"""Anycast service tests (Section 5.2)."""

import pytest

from repro.services.anycast import AnycastGroup


@pytest.fixture()
def net(intra_net_factory):
    return intra_net_factory(n_hosts=60, seed=4)


def test_servers_join_with_group_prefix(net):
    group = AnycastGroup(net, "dns")
    routers = net.topology.edge_routers()
    ids = [group.add_server(routers[i]) for i in range(3)]
    prefixes = {fid.prefix_bits(group.group_bits) for fid in ids}
    assert len(prefixes) == 1
    net.check_ring()


def test_anycast_reaches_some_member(net):
    group = AnycastGroup(net, "dns")
    routers = net.topology.edge_routers()
    for i in range(4):
        group.add_server(routers[i])
    result = group.send(routers[10])
    assert result.delivered
    # Delivered at a member's router.
    terminal = net.routers[result.path[-1]]
    assert any(group._is_member_id(rid) for rid in terminal.vn_table)


def test_anycast_to_empty_group_fails(net):
    group = AnycastGroup(net, "empty")
    assert not group.send(net.topology.routers[0]).delivered


def test_suffix_steering_changes_target(net):
    group = AnycastGroup(net, "steer")
    routers = net.topology.edge_routers()
    group.add_server(routers[0], suffix=0)
    group.add_server(routers[5], suffix=7)
    r0 = group.send(routers[10], suffix=0)
    r7 = group.send(routers[10], suffix=7)
    assert r0.delivered and r7.delivered
    # Each send lands at *a* member router ("the first server in G for
    # which the packet encounters a route" — possibly not the aimed one).
    member_routers = {net.vn_index[m].router for m in group.members.values()}
    assert r0.path[-1] in member_routers
    assert r7.path[-1] in member_routers
    # Steering directly from the target's own router is exact.
    exact = group.send(routers[5], suffix=7)
    assert exact.delivered and exact.hops == 0


def test_duplicate_suffix_rejected(net):
    group = AnycastGroup(net, "dup")
    group.add_server(net.topology.edge_routers()[0], suffix=1)
    with pytest.raises(ValueError):
        group.add_server(net.topology.edge_routers()[1], suffix=1)


def test_remove_server(net):
    group = AnycastGroup(net, "rm")
    routers = net.topology.edge_routers()
    group.add_server(routers[0], suffix=0)
    group.add_server(routers[3], suffix=1)
    group.remove_server(0)
    net.check_ring()
    assert 0 not in group.members
    result = group.send(routers[10], suffix=0)
    assert result.delivered  # falls through to the surviving member
    with pytest.raises(KeyError):
        group.remove_server(0)


def test_anycast_cost_vs_nearest_member(net):
    """The early-exit means anycast cost is bounded by routing to the
    group arc — and never absurdly worse than the nearest member."""
    group = AnycastGroup(net, "near")
    routers = net.topology.edge_routers()
    for i in range(0, 12, 3):
        group.add_server(routers[i])
    src = routers[20]
    result = group.send(src)
    nearest = group.nearest_member_distance(src)
    assert result.delivered
    assert result.hops <= max(4 * nearest, net.topology.diameter() * 4)


def test_anycast_needs_no_extra_state(net):
    """"This approach to anycast requires no additional state or control
    message overhead beyond that of joining the network": adding a server
    is exactly one ring join."""
    group = AnycastGroup(net, "cost")
    before = len(net.stats.operations)
    group.add_server(net.topology.edge_routers()[0])
    joins = [op for op in net.stats.operations[before:] if op["kind"] == "join"]
    assert len(joins) == 1
