"""Hosting router: virtual-node table, candidate index, Algorithm 2 lookups."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idspace.identifier import RingSpace
from repro.intra.router import RoflRouter
from repro.intra.virtualnode import Pointer, VirtualNode

SPACE = RingSpace(bits=16)


def make_router(cache_entries=8):
    return RoflRouter("r0", SPACE, cache_entries=cache_entries)


def vn(value, router="r0", ephemeral=False):
    return VirtualNode(id=SPACE.make(value), router=router,
                       host_name="h{}".format(value), ephemeral=ephemeral)


def succ(value, path=("r0", "r1")):
    return Pointer(SPACE.make(value), tuple(path), "successor")


class TestVnTable:
    def test_default_vn_always_present(self):
        router = make_router()
        assert router.default_vn.id in router.vn_table
        assert router.default_vn.is_default

    def test_register_and_remove(self):
        router = make_router()
        node = vn(100)
        router.register_virtual_node(node)
        assert router.hosts_id(SPACE.make(100))
        router.remove_virtual_node(SPACE.make(100))
        assert not router.hosts_id(SPACE.make(100))

    def test_duplicate_registration_rejected(self):
        router = make_router()
        router.register_virtual_node(vn(100))
        with pytest.raises(ValueError):
            router.register_virtual_node(vn(100))

    def test_foreign_vn_rejected(self):
        router = make_router()
        with pytest.raises(ValueError):
            router.register_virtual_node(vn(5, router="other"))

    def test_cannot_remove_default_vn(self):
        router = make_router()
        with pytest.raises(ValueError):
            router.remove_virtual_node(router.default_vn.id)

    def test_resident_vns_filters_ephemeral(self):
        router = make_router()
        router.register_virtual_node(vn(1, ephemeral=True))
        assert len(router.resident_vns()) == 2
        assert len(router.resident_vns(include_ephemeral=False)) == 1


class TestBestMatch:
    def test_local_resident_wins_on_exact_distance(self):
        router = make_router()
        node = vn(100)
        router.register_virtual_node(node)
        match = router.best_match(SPACE.make(100))
        assert match.is_local and match.resident_vn is node

    def test_successor_pointers_are_candidates(self):
        router = make_router()
        node = vn(100)
        node.successors = [succ(200)]
        router.register_virtual_node(node)
        match = router.best_match(SPACE.make(210))
        assert match.dest_id.value == 200 and not match.is_local

    def test_ephemeral_children_visible_only_to_data(self):
        router = make_router()
        node = vn(100)
        node.ephemeral_children[SPACE.make(150)] = Pointer(
            SPACE.make(150), ("r0", "r9"), "ephemeral")
        router.register_virtual_node(node)
        data = router.vn_best_match(SPACE.make(150), include_ephemeral=True)
        assert data.dest_id.value == 150
        ctl = router.vn_best_match(SPACE.make(150), include_ephemeral=False)
        assert ctl.dest_id.value == 100

    def test_ephemeral_residents_skipped_in_lookup(self):
        router = make_router()
        router.register_virtual_node(vn(100, ephemeral=True))
        match = router.vn_best_match(SPACE.make(100), include_ephemeral=False)
        assert match.dest_id.value != 100

    def test_cache_shortcut_only_when_strictly_closer(self):
        router = make_router()
        node = vn(100)
        node.successors = [succ(150)]
        router.register_virtual_node(node)
        router.cache.put(Pointer(SPACE.make(180), ("r0", "r2"), "cache"))
        match = router.best_match(SPACE.make(190))
        assert match.dest_id.value == 180 and match.pointer.kind == "cache"
        # Cache not closer than VN state → VN wins.
        router.cache.put(Pointer(SPACE.make(120), ("r0", "r2"), "cache"))
        match = router.best_match(SPACE.make(151))
        assert match.dest_id.value == 150

    def test_index_invalidation_on_mutation(self):
        router = make_router()
        node = vn(100)
        router.register_virtual_node(node)
        assert router.best_match(SPACE.make(300)).dest_id.value == 100
        node.successors = [succ(250)]
        router.mark_dirty()
        assert router.best_match(SPACE.make(300)).dest_id.value == 250


class TestPointerUpkeep:
    def test_drop_pointer_everywhere(self):
        router = make_router()
        node = vn(100)
        node.successors = [succ(200)]
        router.register_virtual_node(node)
        router.cache.put(Pointer(SPACE.make(200), ("r0", "r1"), "cache"))
        router.drop_pointer(succ(200))
        assert node.successors == []
        assert SPACE.make(200) not in router.cache

    def test_reroute_pointer(self):
        router = make_router()
        node = vn(100)
        old = succ(200, path=("r0", "dead", "r1"))
        node.successors = [old]
        router.register_virtual_node(node)
        new = succ(200, path=("r0", "r2", "r1"))
        router.reroute_pointer(old, new)
        assert node.successors[0].path == ("r0", "r2", "r1")

    def test_state_entries(self):
        router = make_router()
        node = vn(100)
        node.successors = [succ(200), succ(300)]
        node.predecessor = Pointer(SPACE.make(50), ("r0", "r3"), "predecessor")
        router.register_virtual_node(node)
        router.cache.put(Pointer(SPACE.make(1), ("r0", "r1"), "cache"))
        # default VN (1) + node (1 + 2 succ + 1 pred) + 1 cache entry
        assert router.state_entries() == 1 + 4 + 1
        assert router.state_entries(include_cache=False) == 5


class TestFlushCoalescing:
    def test_pointer_upkeep_marks_each_vn_once(self):
        """reroute + drop on the same VN coalesce into one re-diff at the
        next flush, and the flush itself is a single epoch."""
        from repro.util import perf

        router = make_router()
        node = vn(100)
        old = succ(200, path=("r0", "dead", "r1"))
        node.successors = [old, succ(300)]
        router.register_virtual_node(node)
        router.best_match(SPACE.make(1))  # settle the initial rebuild
        epoch0 = router.flush_epoch
        flushes0 = perf.value("router.index.refresh.flushes")
        owners0 = perf.value("router.index.refresh.owners")
        router.reroute_pointer(old, succ(200, path=("r0", "r2", "r1")))
        router.drop_pointer(succ(300))
        router.flush_index()
        assert router.flush_epoch == epoch0 + 1
        assert perf.value("router.index.refresh.flushes") == flushes0 + 1
        assert perf.value("router.index.refresh.owners") == owners0 + 1
        assert node.successors[0].path == ("r0", "r2", "r1")
        assert len(node.successors) == 1

    def test_flush_index_is_idempotent_when_clean(self):
        from repro.util import perf

        router = make_router()
        router.register_virtual_node(vn(100))
        router.flush_index()
        epoch0 = router.flush_epoch
        flushes0 = perf.value("router.index.refresh.flushes")
        router.flush_index()
        router.flush_index()
        assert router.flush_epoch == epoch0
        assert perf.value("router.index.refresh.flushes") == flushes0


@settings(max_examples=60)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=65535),
                          st.lists(st.integers(min_value=0, max_value=65535),
                                   max_size=4),
                          st.booleans()),
                min_size=0, max_size=8),
       st.integers(min_value=0, max_value=65535),
       st.booleans())
def test_index_matches_reference_scan(specs, dest_v, include_eph):
    """The O(log n) candidate index must agree with the brute-force scan."""
    router = make_router(cache_entries=0)
    for i, (vid, succs, ephemeral) in enumerate(specs):
        if SPACE.make(vid) in router.vn_table:
            continue
        node = vn(vid, ephemeral=ephemeral)
        if not ephemeral:
            node.successors = [succ(s) for s in dict.fromkeys(succs)
                               if s != vid]
        router.register_virtual_node(node)
    dest = SPACE.make(dest_v)
    fast = router.vn_best_match(dest, include_ephemeral=include_eph)
    slow = router.vn_best_match_scan(dest, include_ephemeral=include_eph)
    assert (fast is None) == (slow is None)
    if fast is not None:
        assert fast.distance == slow.distance
