"""Intradomain joining (Algorithm 1) and ring maintenance."""

import pytest

from repro.idspace.crypto import KeyPair
from repro.idspace.identifier import FlatId
from repro.intra import ring
from repro.intra.ring import JoinError
from repro.topology.hosts import PlannedHost


class TestBootstrap:
    def test_router_ring_is_consistent_before_any_host(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        net.check_ring()
        assert len(net.vn_index) == len(net.routers)

    def test_bootstrap_cost_charged_separately(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        assert net.stats.total_messages("bootstrap") > 0
        assert net.stats.total_messages("join") == 0


class TestJoin:
    def test_ring_stays_consistent_through_joins(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        for _ in range(40):
            net.join_host(net.next_planned_host())
            net.check_ring()

    def test_join_receipt_fields(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        host = net.next_planned_host()
        receipt = net.join_host(host)
        assert receipt.flat_id == host.flat_id
        assert receipt.messages > 0
        assert receipt.latency_ms > 0
        assert receipt.router == host.attach_at

    def test_join_cost_near_four_diameters(self, intra_net_factory):
        """The paper: join overhead ≈ 4 × network diameter."""
        net = intra_net_factory(n_hosts=200)
        costs = net.stats.operation_costs("join")
        mean = sum(costs) / len(costs)
        diameter = net.topology.diameter()
        assert mean <= 6 * diameter

    def test_duplicate_id_rejected(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        host = net.next_planned_host()
        net.join_host(host)
        clone = PlannedHost(name="clone", attach_at=host.attach_at,
                            key_pair=host.key_pair)
        with pytest.raises(JoinError):
            net.join_host(clone)

    def test_spoofed_identity_rejected(self, intra_net_factory):
        from repro.idspace.crypto import SpoofedIdentityError
        net = intra_net_factory(n_hosts=0)
        outsider = KeyPair.generate(b"outsider")  # wrong authority
        host = PlannedHost(name="spoof", attach_at=net.topology.routers[0],
                           key_pair=outsider)
        with pytest.raises(SpoofedIdentityError):
            net.join_host(host)

    def test_join_via_down_router_fails(self, intra_net_factory):
        net = intra_net_factory(n_hosts=5)
        victim = net.topology.routers[0]
        net.lsmap.fail_router(victim)
        host = net.next_planned_host()
        with pytest.raises(JoinError):
            net.join_host(host, via_router=victim)

    def test_successor_groups_filled(self, intra_net_factory):
        net = intra_net_factory(n_hosts=50)
        for vn in net.ring_members():
            assert 1 <= len(vn.successors) <= net.successor_group_size
            # No duplicate targets inside a group.
            ids = [p.dest_id for p in vn.successors]
            assert len(set(ids)) == len(ids)

    def test_successor_group_matches_ring_order(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30)
        members = sorted(net.ring_members(), key=lambda v: v.id)
        index = {vn.id: i for i, vn in enumerate(members)}
        n = len(members)
        for vn in members:
            primary = vn.primary_successor()
            assert index[primary.dest_id] == (index[vn.id] + 1) % n

    def test_predecessor_pointers_consistent(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30)
        members = sorted(net.ring_members(), key=lambda v: v.id)
        n = len(members)
        for i, vn in enumerate(members):
            assert vn.predecessor is not None
            assert vn.predecessor.dest_id == members[(i - 1) % n].id

    def test_source_routes_are_live_paths(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30)
        for vn in net.ring_members():
            for ptr in vn.successors:
                assert net.lsmap.path_is_live(list(ptr.path))
                assert ptr.path[0] == vn.router

    def test_cache_entries_created_by_control_traffic(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60)
        assert sum(len(r.cache) for r in net.routers.values()) > 0

    def test_cache_fill_can_be_disabled(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, cache_fill_enabled=False)
        assert sum(len(r.cache) for r in net.routers.values()) == 0


class TestEphemeral:
    def test_ephemeral_hosts_stay_off_ring(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0, ephemeral_fraction=1.0)
        receipts = net.join_random_hosts(10)
        assert all(r.ephemeral for r in receipts)
        assert all(vn.is_default for vn in net.ring_members())
        net.check_ring()

    def test_ephemeral_join_is_cheaper(self, intra_net_factory):
        stable_net = intra_net_factory(n_hosts=100, seed=3)
        eph_net = intra_net_factory(n_hosts=0, seed=3, ephemeral_fraction=1.0)
        # Join the same number of hosts so the rings are comparable.
        eph_net.join_random_hosts(100)
        stable_cost = sum(stable_net.stats.operation_costs("join")) / 100
        eph_cost = sum(eph_net.stats.operation_costs("join")) / 100
        assert eph_cost < stable_cost

    def test_ephemeral_host_reachable(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30, seed=9, ephemeral_fraction=0.3)
        ephemerals = [name for name, vn in net.hosts.items() if vn.ephemeral]
        stables = [name for name, vn in net.hosts.items() if not vn.ephemeral]
        assert ephemerals, "seed produced no ephemeral hosts"
        result = net.send(stables[0], ephemerals[0])
        assert result.delivered

    def test_ephemeral_parked_at_predecessor(self, intra_net_factory):
        net = intra_net_factory(n_hosts=40, seed=9, ephemeral_fraction=0.25)
        for name, vn in net.hosts.items():
            if not vn.ephemeral:
                continue
            pred = net.vn_index[vn.predecessor.dest_id]
            assert vn.id in pred.ephemeral_children


class TestJoinWithId:
    def test_raw_id_join(self, intra_net_factory):
        net = intra_net_factory(n_hosts=10)
        target = FlatId(12345)
        receipt = ring.join_with_id(net, target, net.topology.routers[0],
                                    "raw-id")
        assert receipt.flat_id == target
        net.check_ring()
        result = net.send_to_id(net.topology.routers[5], target)
        assert result.delivered

    def test_raw_id_duplicate_rejected(self, intra_net_factory):
        net = intra_net_factory(n_hosts=5)
        ring.join_with_id(net, FlatId(999), net.topology.routers[0], "one")
        with pytest.raises(JoinError):
            ring.join_with_id(net, FlatId(999), net.topology.routers[1], "two")
