"""The ``repro.obs`` tracer core: records, sinks, sampling, install."""

import json

import pytest

from repro.obs import trace
from repro.obs.trace import (JsonlSink, NullSink, RingBufferSink, TraceRecord,
                             Tracer, dump_jsonl, read_jsonl)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    trace.uninstall()


class TestRecords:
    def test_round_trip(self):
        record = TraceRecord(seq=3, t=1.5, span=7, parent=1, kind="hop",
                             data={"frm": "a", "to": "b"})
        assert TraceRecord.from_dict(record.to_dict()) == record

    def test_emit_assigns_monotonic_seq_and_clock_time(self):
        times = iter([0.5, 1.25, 2.0])
        tracer = Tracer(clock=lambda: next(times))
        tracer.emit("a")
        tracer.emit("b")
        tracer.emit("c")
        records = tracer.sink.records()
        assert [r.seq for r in records] == [1, 2, 3]
        assert [r.t for r in records] == [0.5, 1.25, 2.0]


class TestSinks:
    def test_ring_buffer_caps_retention(self):
        tracer = Tracer(sink=RingBufferSink(capacity=3))
        for _ in range(10):
            tracer.emit("x")
        kept = tracer.sink.records()
        assert [r.seq for r in kept] == [8, 9, 10]

    def test_null_sink_discards_but_counts(self):
        tracer = Tracer(sink=NullSink())
        tracer.emit("x")
        assert tracer.records_emitted == 1

    def test_jsonl_is_deterministic_and_readable(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        tracer = Tracer(sink=JsonlSink(path))
        tracer.emit("decision", span=1, parent=-1, rule="successor", b=2, a=1)
        tracer.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        # Sorted keys + compact separators: the byte-stability contract.
        assert lines[0] == json.dumps(json.loads(lines[0]), sort_keys=True,
                                      separators=(",", ":"))
        assert read_jsonl(path)[0].data == {"rule": "successor", "a": 1,
                                            "b": 2}

    def test_dump_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.emit("a", x=1)
        tracer.emit("b", y=2)
        path = str(tmp_path / "dump.jsonl")
        dump_jsonl(tracer.sink.records(), path)
        assert read_jsonl(path) == tracer.sink.records()


class TestSpans:
    def test_hop_records_parent_their_committing_decision(self):
        tracer = Tracer()
        span = tracer.span("intra.packet", start="r1")
        d1 = span.decision(rule="successor")
        h1 = span.hop(frm="r1", to="r2")
        d2 = span.decision(rule="cache")
        h2 = span.hop(frm="r2", to="r3")
        span.end(delivered=True)
        by_seq = {r.seq: r for r in tracer.sink.records()}
        assert by_seq[h1].parent == d1
        assert by_seq[h2].parent == d2
        assert by_seq[d1].parent == span.root
        assert by_seq[span.root].parent == -1

    def test_sampling_is_deterministic_and_uses_no_rng(self):
        kept_a = [Tracer(sample=0.5).span("p") is not None
                  for _ in range(64)]
        tracer = Tracer(sample=0.5)
        kept_b = [tracer.span("p") is not None for _ in range(64)]
        # Same span-id sequence -> same keep/drop pattern, roughly half kept.
        assert kept_a[0] == kept_b[0]
        assert 8 < sum(kept_b) < 56
        assert tracer.spans_dropped == 64 - sum(kept_b)

    def test_sample_zero_drops_everything(self):
        tracer = Tracer(sample=0.0)
        assert tracer.span("p") is None
        assert len(tracer.sink) == 0

    def test_bad_sample_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample=1.5)


class TestInstall:
    def test_enabled_flag_tracks_install(self):
        assert trace.ENABLED is False
        tracer = trace.install(Tracer())
        assert trace.ENABLED is True and trace.get_tracer() is tracer
        trace.uninstall()
        assert trace.ENABLED is False and trace.get_tracer() is None

    def test_tracing_contextmanager_scopes_install(self):
        with trace.tracing() as tracer:
            assert trace.get_tracer() is tracer
        assert trace.ENABLED is False

    def test_event_in_current_attaches_to_open_packet_span(self):
        with trace.tracing() as tracer:
            span = trace.packet_span("intra.packet")
            trace.event_in_current("cache.hit", router="r1")
            trace.close_span(span)
            trace.event_in_current("cache.hit", router="r2")  # no span: dropped
        kinds = [(r.kind, r.span) for r in tracer.sink.records()]
        assert kinds == [("intra.packet", span.id), ("cache.hit", span.id)]


class TestObservers:
    def test_observers_see_records_after_sink(self):
        seen = []
        tracer = Tracer()
        tracer.add_observer(seen.append)
        tracer.emit("x")
        assert [r.kind for r in seen] == ["x"]

    def test_observer_emits_reach_sink_but_are_not_redispatched(self):
        tracer = Tracer()

        def probe(record):
            if record.kind != "probe.violation":
                tracer.emit("probe.violation", about=record.kind)

        tracer.add_observer(probe)
        tracer.emit("hop")
        kinds = [r.kind for r in tracer.sink.records()]
        # The violation landed in the sink exactly once (no recursion).
        assert kinds == ["hop", "probe.violation"]

    def test_remove_observer(self):
        seen = []
        tracer = Tracer()
        tracer.add_observer(seen.append)
        tracer.remove_observer(seen.append)
        tracer.emit("x")
        assert seen == []
