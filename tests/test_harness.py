"""Every figure driver runs at tiny scale and reports the expected shape."""

import pytest

from repro.harness import experiments as E
from repro.harness import report as R


@pytest.fixture(scope="module")
def tiny():
    """Shared tiny-scale results so drivers run once per module."""
    return {
        "fig5a": E.fig5a_intra_join_overhead(profiles=("AS3967",),
                                             host_counts=(10, 50, 200)),
        "fig5b": E.fig5b_join_overhead_cdf(profiles=("AS3967",), n_hosts=150),
        "fig5c": E.fig5c_join_latency_cdf(profiles=("AS3967",), n_hosts=100),
        "fig6a": E.fig6a_stretch_vs_cache(cache_sizes=(0, 512), n_hosts=200,
                                          n_packets=120),
        "fig6b": E.fig6b_load_balance(n_hosts=150, n_packets=300),
        "fig6c": E.fig6c_memory(host_counts=(10, 100)),
        "fig7": E.fig7_partition_repair(ids_per_pop=(1, 8)),
        "fig7b": E.fig7b_host_failure(n_hosts=150, n_failures=30),
        "fig8a": E.fig8a_inter_join(n_ases=50, n_hosts=120),
        "fig8b": E.fig8b_inter_stretch(n_ases=50, n_hosts=120,
                                       finger_counts=(0, 12), n_packets=120),
        "fig8c": E.fig8c_inter_cache_stretch(n_ases=50, n_hosts=120,
                                             cache_sizes=(0, 512),
                                             n_packets=120),
        "fig8d": E.fig8d_stub_failure(n_ases=50, n_hosts=150, n_failures=3),
        "fig8e": E.fig8e_bloom_peering(n_ases=50, n_hosts=100, n_packets=100),
    }


def test_fig5a_linear_and_cheaper_than_cmu(tiny):
    data = tiny["fig5a"]["profiles"]["AS3967"]
    assert data["rofl_cumulative"][-1] > data["rofl_cumulative"][0]
    assert all(r > 2 for r in data["cmu_over_rofl"])
    # Roughly linear: cost per host stays within a small band.
    per_host_early = data["rofl_cumulative"][0] / 10
    per_host_late = data["rofl_cumulative"][-1] / 200
    assert per_host_late < 3 * per_host_early


def test_fig5b_join_bounded_by_diameter_multiple(tiny):
    data = tiny["fig5b"]["AS3967"]
    assert data["p95"] < 10 * data["diameter"]
    assert 1 < data["per_diameter"] < 8


def test_fig5c_latencies_sane(tiny):
    data = tiny["fig5c"]["AS3967"]
    assert 0 < data["median_ms"] < data["p95_ms"] < 1000


def test_fig6a_cache_reduces_stretch(tiny):
    series = dict(tiny["fig6a"]["series"])
    assert series[512] < series[0]
    assert series[512] >= 1.0


def test_fig6b_no_hotspots(tiny):
    data = tiny["fig6b"]
    assert data["max_fraction_rofl"] < 4 * data["max_fraction_ospf"]
    assert 0.2 < data["top_decile_ratio"] < 5


def test_fig6c_memory_ratio_grows_with_ids(tiny):
    rows = tiny["fig6c"]["series"]
    assert rows[-1]["cmu_over_rofl"] > rows[0]["cmu_over_rofl"]
    assert rows[-1]["cmu_avg_entries"] == rows[-1]["ids"]


def test_fig7_repair_scales_with_pop_population(tiny):
    rows = tiny["fig7"]["series"]
    assert rows[-1]["repair_messages"] >= rows[0]["repair_messages"]
    for row in rows:
        assert row["repair_messages"] < 40 * max(1, row["rejoin_baseline"])


def test_fig7b_failure_comparable_to_join(tiny):
    assert tiny["fig7b"]["failure_over_join"] < 6


def test_fig8a_strategy_ordering(tiny):
    s = tiny["fig8a"]["strategies"]
    assert s["ephemeral"]["mean"] < s["single-homed"]["mean"]
    assert s["multihomed"]["mean"] < s["peering"]["mean"]
    assert all(d["mismatches"] == 0 for d in s.values())
    extrap = tiny["fig8a"]["extrapolation_600M"]
    assert extrap["peering"] > extrap["multihomed"]


def test_fig8b_fingers_reduce_stretch(tiny):
    fingers = tiny["fig8b"]["fingers"]
    assert fingers[12]["mean"] < fingers[0]["mean"]
    assert tiny["fig8b"]["bgp_policy"]["mean"] >= 1.0


def test_fig8c_cache_monotone_not_worse(tiny):
    rows = tiny["fig8c"]["series"]
    assert rows[-1]["mean_stretch"] <= rows[0]["mean_stretch"] + 0.05


def test_fig8d_failures_contained(tiny):
    for row in tiny["fig8d"]["failures"]:
        assert row["post_delivery"] == 1.0
        assert row["endpoint_fraction_600M"] < 1e-4
        assert row["repair_messages"] <= 60 * row["ids"]


def test_fig8e_bloom_tradeoff(tiny):
    data = tiny["fig8e"]
    assert data["bloom"]["mean_join"] < data["virtual_as"]["mean_join"]
    assert data["bloom"]["delivery_rate"] == 1.0
    assert data["virtual_as"]["delivery_rate"] == 1.0


def test_all_formatters_render(tiny):
    rendered = [
        R.format_fig5a(tiny["fig5a"]), R.format_fig5b(tiny["fig5b"]),
        R.format_fig5c(tiny["fig5c"]), R.format_fig6a(tiny["fig6a"]),
        R.format_fig6b(tiny["fig6b"]), R.format_fig6c(tiny["fig6c"]),
        R.format_fig7(tiny["fig7"]), R.format_fig7b(tiny["fig7b"]),
        R.format_fig8a(tiny["fig8a"]), R.format_fig8b(tiny["fig8b"]),
        R.format_fig8c(tiny["fig8c"]), R.format_fig8d(tiny["fig8d"]),
        R.format_fig8e(tiny["fig8e"]),
    ]
    for text in rendered:
        assert "paper:" in text
        assert len(text.splitlines()) >= 3
