"""The flat-label baselines behind one contract: CMU-ETHERNET, OSPF,
and the Disco-style compact-routing network all satisfy
:class:`repro.baselines.FlatLabelBaseline`, so the head-to-head harness
can drive them interchangeably."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FlatLabelBaseline
from repro.baselines.cmu_ethernet import CmuEthernetNetwork
from repro.baselines.ospf_routing import OspfHostRouting
from repro.compact import DiscoNetwork
from repro.intra.network import IntraDomainNetwork
from repro.topology.isp import synthetic_isp

BASELINES = [CmuEthernetNetwork, OspfHostRouting, DiscoNetwork]


@pytest.fixture()
def topo():
    return synthetic_isp(n_routers=50, seed=2)


@pytest.mark.parametrize("cls", BASELINES)
class TestFlatLabelContract:
    """Every baseline satisfies the shared protocol the harness drives."""

    def test_satisfies_protocol(self, topo, cls):
        net = cls(topo, seed=0)
        assert isinstance(net, FlatLabelBaseline)

    def test_join_host_returns_messages(self, topo, cls):
        """``join_host`` returns the operation's message count — the
        same unit ``stats.operation_costs("join")`` records."""
        net = cls(topo, seed=0)
        costs = net.join_random_hosts(5)
        assert len(costs) == 5
        assert all(isinstance(c, int) and c >= 0 for c in costs)
        assert costs == net.stats.operation_costs("join")

    def test_delivers_within_stretch_bound(self, topo, cls):
        net = cls(topo, seed=0)
        net.join_random_hosts(20)
        for _ in range(30):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            assert result.delivered
            if result.optimal_hops > 0:
                assert result.stretch <= net.stretch_bound + 1e-9

    def test_memory_entries_cover_every_router(self, topo, cls):
        net = cls(topo, seed=0)
        net.join_random_hosts(10)
        mem = net.memory_entries_per_router()
        assert set(mem) == set(topo.routers)
        assert all(v >= 0 for v in mem.values())
        assert net.n_hosts == 10

    def test_same_seed_same_host_population(self, topo, cls):
        """Identical seeds replay the identical HostPlan tape — the
        property the head-to-head relies on for workload parity."""
        rofl = IntraDomainNetwork(topo, seed=0)
        net = cls(topo, seed=0)
        rofl.join_random_hosts(15)
        net.join_random_hosts(15)
        assert list(net.hosts) == list(rofl.hosts)


class TestCmuEthernet:
    def test_join_floods_every_link(self, topo):
        net = CmuEthernetNetwork(topo, seed=0)
        cost = net.join_host(net._plan.next_host())
        assert cost >= 2 * topo.n_links - max(
            dict(topo.graph.degree()).values())

    def test_memory_is_all_hosts_everywhere(self, topo):
        net = CmuEthernetNetwork(topo, seed=0)
        net.join_random_hosts(30)
        mem = net.memory_entries_per_router()
        assert all(v == 30 for v in mem.values())

    def test_delivery_is_shortest_path(self, topo):
        net = CmuEthernetNetwork(topo, seed=0)
        net.join_random_hosts(10)
        names = sorted(net.hosts)
        result = net.send(names[0], names[1])
        assert result.delivered
        assert result.stretch == 1.0

    def test_join_overhead_ratio_vs_rofl(self, topo):
        """The Fig 5a headline: CMU-ETHERNET needs far more messages."""
        rofl = IntraDomainNetwork(topo, seed=0)
        cmu = CmuEthernetNetwork(topo, seed=0)
        rofl.join_random_hosts(200)
        cmu.join_random_hosts(200)
        ratio = (cmu.stats.total_messages("join")
                 / rofl.stats.total_messages("join"))
        assert ratio > 3

    def test_memory_ratio_vs_rofl(self, topo):
        rofl = IntraDomainNetwork(topo, seed=0)
        cmu = CmuEthernetNetwork(topo, seed=0)
        rofl.join_random_hosts(300)
        cmu.join_random_hosts(300)
        rofl_mem = rofl.memory_entries_per_router(include_cache=False)
        cmu_mem = cmu.memory_entries_per_router()
        ratio = (sum(cmu_mem.values()) / len(cmu_mem)) / \
                (sum(rofl_mem.values()) / len(rofl_mem))
        assert ratio > 3


class TestOspf:
    def test_shortest_path_delivery(self, topo):
        ospf = OspfHostRouting(topo)
        a, b = topo.routers[0], topo.routers[-1]
        result = ospf.send_routers(a, b)
        assert result.delivered and result.stretch == 1.0

    def test_host_level_send_is_shortest_path(self, topo):
        ospf = OspfHostRouting(topo, seed=0)
        ospf.join_random_hosts(10)
        a, b = ospf.random_host_pair()
        result = ospf.send(a, b)
        assert result.delivered and result.stretch == 1.0

    def test_join_is_free(self, topo):
        """OSPF's location-dependent addressing has no join protocol;
        the cost is recorded as an explicit zero so join CDFs include
        the baseline."""
        ospf = OspfHostRouting(topo, seed=0)
        assert ospf.join_random_hosts(5) == [0] * 5
        assert ospf.stats.total_messages("join") == 0

    def test_load_series_accumulates(self, topo):
        ospf = OspfHostRouting(topo)
        pairs = [(topo.routers[i], topo.routers[-1 - i]) for i in range(10)]
        assert ospf.replay_pairs(pairs) == 10
        assert sum(ospf.load_series().values()) > 0

    def test_unreachable_when_partitioned(self, topo):
        from repro.linkstate.lsdb import LinkStateMap
        lsmap = LinkStateMap(topo)
        ospf = OspfHostRouting(topo, lsmap=lsmap)
        victim = topo.routers[5]
        lsmap.fail_router(victim)
        result = ospf.send_routers(topo.routers[0], victim)
        assert not result.delivered


@given(n_routers=st.integers(8, 28), seed=st.integers(0, 2**20))
@settings(max_examples=15, deadline=None)
def test_disco_stretch_never_exceeds_bound(n_routers, seed):
    """Property: on arbitrary small topologies the Thorup–Zwick argument
    holds in practice — every delivered packet's stretch ≤ 3."""
    topo = synthetic_isp(n_routers=n_routers, seed=seed)
    net = DiscoNetwork(topo, seed=seed)
    net.join_random_hosts(min(2 * n_routers, 24))
    names = net.hosts.names[:10]
    for a in names:
        for b in names:
            if a == b:
                continue
            result = net.send(a, b)
            assert result.delivered, (a, b)
            if result.optimal_hops > 0:
                assert result.stretch <= net.stretch_bound + 1e-9, (
                    a, b, result.stretch)
