"""CMU-ETHERNET and OSPF baselines."""

import pytest

from repro.baselines.cmu_ethernet import CmuEthernetNetwork
from repro.baselines.ospf_routing import OspfHostRouting
from repro.intra.network import IntraDomainNetwork
from repro.topology.isp import synthetic_isp


@pytest.fixture()
def topo():
    return synthetic_isp(n_routers=50, seed=2)


class TestCmuEthernet:
    def test_join_floods_every_link(self, topo):
        net = CmuEthernetNetwork(topo, seed=0)
        cost = net.join_host(net._plan.next_host())
        assert cost >= 2 * topo.n_links - max(
            dict(topo.graph.degree()).values())

    def test_memory_is_all_hosts_everywhere(self, topo):
        net = CmuEthernetNetwork(topo, seed=0)
        net.join_random_hosts(30)
        mem = net.memory_entries_per_router()
        assert all(v == 30 for v in mem.values())

    def test_delivery_is_shortest_path(self, topo):
        net = CmuEthernetNetwork(topo, seed=0)
        net.join_random_hosts(10)
        names = sorted(net.hosts)
        result = net.send(names[0], names[1])
        assert result.delivered
        assert result.stretch == 1.0

    def test_join_overhead_ratio_vs_rofl(self, topo):
        """The Fig 5a headline: CMU-ETHERNET needs far more messages."""
        rofl = IntraDomainNetwork(topo, seed=0)
        cmu = CmuEthernetNetwork(topo, seed=0)
        rofl.join_random_hosts(200)
        cmu.join_random_hosts(200)
        ratio = (cmu.stats.total_messages("join")
                 / rofl.stats.total_messages("join"))
        assert ratio > 3

    def test_memory_ratio_vs_rofl(self, topo):
        rofl = IntraDomainNetwork(topo, seed=0)
        cmu = CmuEthernetNetwork(topo, seed=0)
        rofl.join_random_hosts(300)
        cmu.join_random_hosts(300)
        rofl_mem = rofl.memory_entries_per_router(include_cache=False)
        cmu_mem = cmu.memory_entries_per_router()
        ratio = (sum(cmu_mem.values()) / len(cmu_mem)) / \
                (sum(rofl_mem.values()) / len(rofl_mem))
        assert ratio > 3


class TestOspf:
    def test_shortest_path_delivery(self, topo):
        ospf = OspfHostRouting(topo)
        a, b = topo.routers[0], topo.routers[-1]
        result = ospf.send(a, b)
        assert result.delivered and result.stretch == 1.0

    def test_load_series_accumulates(self, topo):
        ospf = OspfHostRouting(topo)
        pairs = [(topo.routers[i], topo.routers[-1 - i]) for i in range(10)]
        assert ospf.replay_pairs(pairs) == 10
        assert sum(ospf.load_series().values()) > 0

    def test_unreachable_when_partitioned(self, topo):
        from repro.linkstate.lsdb import LinkStateMap
        lsmap = LinkStateMap(topo)
        ospf = OspfHostRouting(topo, lsmap=lsmap)
        victim = topo.routers[5]
        lsmap.fail_router(victim)
        result = ospf.send(topo.routers[0], victim)
        assert not result.delivered
