"""Shared fixtures.

Expensive networks are session-scoped and treated as read-only by the
tests that share them; tests that mutate (failures, partitions) build
their own instances from the factory fixtures.
"""

import pytest

from repro.intra.network import IntraDomainNetwork
from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.topology.asgraph import synthetic_as_graph
from repro.topology.isp import synthetic_isp


@pytest.fixture(scope="session")
def small_topo():
    return synthetic_isp(n_routers=40, seed=7, name="test-isp")


@pytest.fixture(scope="session")
def intra_net_readonly(small_topo):
    """A joined intradomain network shared by read-only tests."""
    net = IntraDomainNetwork(small_topo, seed=7)
    net.join_random_hosts(120)
    net.check_ring()
    return net


@pytest.fixture()
def intra_net_factory():
    def make(n_routers=40, n_hosts=60, seed=7, **kwargs):
        topo = synthetic_isp(n_routers=n_routers, seed=seed)
        net = IntraDomainNetwork(topo, seed=seed, **kwargs)
        if n_hosts:
            net.join_random_hosts(n_hosts)
        return net
    return make


@pytest.fixture(scope="session")
def as_graph():
    return synthetic_as_graph(n_ases=60, seed=7)


@pytest.fixture(scope="session")
def inter_net_readonly(as_graph):
    net = InterDomainNetwork(as_graph, n_fingers=8, seed=7,
                             strategy=JoinStrategy.MULTIHOMED)
    net.join_random_hosts(150)
    net.check_rings()
    return net


@pytest.fixture()
def inter_net_factory():
    def make(n_ases=60, n_hosts=80, seed=7, **kwargs):
        graph = synthetic_as_graph(n_ases=n_ases, seed=seed)
        net = InterDomainNetwork(graph, seed=seed, **kwargs)
        if n_hosts:
            net.join_random_hosts(n_hosts)
        return net
    return make
