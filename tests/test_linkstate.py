"""Link-state substrate: live map, SPF cache, flooding model."""

import pytest

from repro.linkstate.lsdb import EventKind, LinkStateMap, TopologyEvent
from repro.linkstate.protocol import (FloodModel, OspfTimers,
                                      flood_latency_ms, flood_message_cost)
from repro.linkstate.spf import PathCache
from repro.topology.isp import synthetic_isp


@pytest.fixture()
def lsmap():
    return LinkStateMap(synthetic_isp(n_routers=30, seed=1))


class TestLiveMap:
    def test_initially_everything_up(self, lsmap):
        assert len(lsmap.live_routers()) == 30
        assert len(lsmap.components()) == 1

    def test_link_failure_and_restore(self, lsmap):
        a, b = next(iter(lsmap.live_graph.edges()))
        lsmap.fail_link(a, b)
        assert not lsmap.is_link_up(a, b)
        lsmap.restore_link(a, b)
        assert lsmap.is_link_up(a, b)

    def test_router_failure_takes_links_down(self, lsmap):
        router = lsmap.live_routers()[0]
        neighbors = list(lsmap.live_graph.neighbors(router))
        lsmap.fail_router(router)
        assert not lsmap.is_router_up(router)
        for nbr in neighbors:
            assert not lsmap.is_link_up(router, nbr)
        lsmap.restore_router(router)
        for nbr in neighbors:
            assert lsmap.is_link_up(router, nbr)

    def test_independent_link_failure_survives_router_restore(self, lsmap):
        router = lsmap.live_routers()[0]
        nbr = next(iter(lsmap.live_graph.neighbors(router)))
        lsmap.fail_link(router, nbr)
        lsmap.fail_router(router)
        lsmap.restore_router(router)
        assert not lsmap.is_link_up(router, nbr)

    def test_generation_increments(self, lsmap):
        g0 = lsmap.generation
        a, b = next(iter(lsmap.live_graph.edges()))
        lsmap.fail_link(a, b)
        assert lsmap.generation == g0 + 1
        lsmap.fail_link(a, b)  # idempotent: no new event
        assert lsmap.generation == g0 + 1

    def test_subscribers_notified(self, lsmap):
        events = []
        lsmap.subscribe(events.append)
        router = lsmap.live_routers()[3]
        lsmap.fail_router(router)
        assert events == [TopologyEvent(EventKind.ROUTER_DOWN, router=router)]

    def test_pop_failure(self, lsmap):
        downed = lsmap.fail_pop(0)
        assert downed and all(not lsmap.is_router_up(r) for r in downed)
        lsmap.restore_pop(0)
        assert all(lsmap.is_router_up(r) for r in downed)

    def test_path_is_live(self, lsmap):
        paths = PathCache(lsmap)
        routers = lsmap.live_routers()
        path = paths.hop_path(routers[0], routers[-1])
        assert lsmap.path_is_live(path)
        lsmap.fail_link(path[0], path[1])
        assert not lsmap.path_is_live(path)
        assert not lsmap.path_is_live([])


class TestPathCache:
    def test_hop_path_endpoints(self, lsmap):
        paths = PathCache(lsmap)
        a, b = lsmap.live_routers()[0], lsmap.live_routers()[-1]
        path = paths.hop_path(a, b)
        assert path[0] == a and path[-1] == b
        assert paths.hop_dist(a, b) == len(path) - 1
        assert paths.hop_dist(a, a) == 0

    def test_cache_invalidated_by_failures(self, lsmap):
        paths = PathCache(lsmap)
        a, b = lsmap.live_routers()[0], lsmap.live_routers()[-1]
        before = paths.hop_path(a, b)
        mid = before[len(before) // 2]
        if mid not in (a, b):
            lsmap.fail_router(mid)
            after = paths.hop_path(a, b)
            assert after is None or mid not in after

    def test_unreachable_returns_none(self, lsmap):
        paths = PathCache(lsmap)
        a = lsmap.live_routers()[0]
        b = lsmap.live_routers()[1]
        lsmap.fail_router(b)
        assert paths.hop_path(a, b) is None
        assert paths.latency_ms(a, b) is None

    def test_nearest(self, lsmap):
        paths = PathCache(lsmap)
        routers = lsmap.live_routers()
        target = paths.nearest(routers[0], routers[5:8])
        dists = {r: paths.hop_dist(routers[0], r) for r in routers[5:8]}
        assert dists[target] == min(dists.values())

    def test_latency_consistency(self, lsmap):
        paths = PathCache(lsmap)
        a, b = lsmap.live_routers()[0], lsmap.live_routers()[10]
        direct = paths.latency_ms(a, b)
        assert direct > 0
        # Any explicit path is at least as slow as the optimum.
        hop = paths.hop_path(a, b)
        assert paths.path_latency_ms(hop) >= direct - 1e-9

    def test_live_diameter_raises_when_partitioned(self, lsmap):
        paths = PathCache(lsmap)
        assert paths.live_diameter() > 0
        lsmap.fail_pop(0)
        cut_ok = len(lsmap.components()) > 1
        if cut_ok:
            with pytest.raises(ValueError):
                paths.live_diameter()


class TestFloodModel:
    def test_flood_cost_scales_with_links(self, lsmap):
        cost = flood_message_cost(lsmap)
        assert cost == 2 * lsmap.live_graph.number_of_edges()
        origin = lsmap.live_routers()[0]
        assert flood_message_cost(lsmap, origin) < cost

    def test_flood_latency_positive_and_bounded(self, lsmap):
        origin = lsmap.live_routers()[0]
        latency = flood_latency_ms(lsmap, origin)
        assert latency > 0

    def test_recovery_time_includes_detection(self, lsmap):
        model = FloodModel(lsmap, timers=OspfTimers(fast_detect_ms=300.0))
        origin = lsmap.live_routers()[0]
        assert model.recovery_time_ms(origin) > 300.0

    def test_flood_charges_stats(self, lsmap):
        from repro.sim.stats import StatsCollector
        stats = StatsCollector()
        model = FloodModel(lsmap, stats=stats)
        cost = model.lsa_flood(lsmap.live_routers()[0])
        assert stats.total_messages("lsa") == cost > 0


class TestSelectiveInvalidation:
    """Failure events evict only SPF trees touching the failed element."""

    def test_link_down_keeps_untouched_trees(self, lsmap):
        paths = PathCache(lsmap)
        routers = lsmap.live_routers()
        for src in routers[:6]:
            paths.hop_path(src, routers[-1])
        assert len(paths._hop_paths) == 6
        a, b = next(iter(lsmap.live_graph.edges()))
        lsmap.fail_link(a, b)
        # Every surviving tree must be exact: recompute and compare.
        survivors = dict(paths._hop_paths)
        assert all(a not in tree or b not in tree
                   for tree in survivors.values())
        for src, tree in survivors.items():
            fresh = PathCache(lsmap)
            for dst in routers:
                assert paths.hop_dist(src, dst) == fresh.hop_dist(src, dst)

    def test_router_down_evicts_only_touching_trees(self, lsmap):
        paths = PathCache(lsmap)
        routers = lsmap.live_routers()
        for src in routers:
            paths.hop_path(src, src)
        victim = routers[0]
        lsmap.fail_router(victim)
        assert victim not in paths._hop_paths
        # A fully connected graph reaches everywhere, so all trees touched
        # the victim and everything is evicted — but queries still work.
        for src in routers[1:4]:
            fresh = PathCache(lsmap)
            for dst in routers[1:4]:
                assert paths.hop_dist(src, dst) == fresh.hop_dist(src, dst)

    def test_restore_clears_everything(self, lsmap):
        paths = PathCache(lsmap)
        routers = lsmap.live_routers()
        a, b = next(iter(lsmap.live_graph.edges()))
        lsmap.fail_link(a, b)
        for src in routers[:4]:
            paths.hop_path(src, routers[-1])
        lsmap.restore_link(a, b)
        assert paths._hop_paths == {}
        # Post-restore paths may use the restored link again.
        assert paths.hop_dist(a, b) == 1

    def test_latency_cache_also_selective(self, lsmap):
        paths = PathCache(lsmap)
        routers = lsmap.live_routers()
        for src in routers[:5]:
            paths.latency_ms(src, routers[-1])
        a, b = next(iter(lsmap.live_graph.edges()))
        lsmap.fail_link(a, b)
        for src, dists in paths._latency_dist.items():
            fresh = PathCache(lsmap)
            assert paths.latency_ms(src, routers[-1]) \
                == fresh.latency_ms(src, routers[-1])

    def test_generation_fallback_still_works(self, lsmap):
        # A cache that never saw the events (constructed fresh, then the
        # generation diverges artificially) falls back to a full clear.
        paths = PathCache(lsmap)
        routers = lsmap.live_routers()
        paths.hop_path(routers[0], routers[-1])
        paths._generation = -999
        assert paths.hop_path(routers[0], routers[-1]) is not None
        assert paths._generation == lsmap.generation
