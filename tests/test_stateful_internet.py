"""Stateful property testing of the interdomain hierarchy."""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.topology.asgraph import synthetic_as_graph

STRATEGIES = list(JoinStrategy)


class InternetMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        graph = synthetic_as_graph(n_ases=40, seed=77)
        self.net = InterDomainNetwork(graph, n_fingers=4, seed=77)

    @rule(which=st.integers(min_value=0, max_value=3))
    def join_one(self, which):
        if self.net.n_hosts < 50:
            host = self.net.next_planned_host()
            guard = 0
            while not self.net.as_is_up(host.attach_at) and guard < 32:
                host = self.net.next_planned_host()
                guard += 1
            if self.net.as_is_up(host.attach_at):
                self.net.join_host(host, strategy=STRATEGIES[which])

    @precondition(lambda self: self.net.n_hosts > 4)
    @rule(pick=st.integers(min_value=0, max_value=10 ** 6))
    def fail_stub(self, pick):
        stubs = [s for s in self.net.asg.stubs()
                 if self.net.as_is_up(s) and len(self.net.ases[s].hosted)]
        if stubs:
            self.net.fail_as(stubs[pick % len(stubs)])

    @precondition(lambda self: self.net.n_hosts >= 2)
    @rule(pick=st.integers(min_value=0, max_value=10 ** 6))
    def send_one(self, pick):
        names = sorted(self.net.hosts)
        a = names[pick % len(names)]
        b = names[(pick // 11 + 1) % len(names)]
        if a != b:
            assert self.net.send(a, b).delivered

    @invariant()
    def rings_consistent(self):
        self.net.check_rings()

    @invariant()
    def oracle_mismatches_bounded(self):
        # With *mixed* joining strategies, a scoped lookup can dead-end in
        # a sparse ring region and fall back to the oracle (counted, and
        # asserted zero in the uniform-strategy tests/benches); here we
        # only require the fallback to stay rare relative to joins.
        assert self.net.lookup_mismatches <= max(4, self.net.n_hosts)


TestInternetMachine = InternetMachine.TestCase
TestInternetMachine.settings = settings(max_examples=12,
                                        stateful_step_count=20,
                                        deadline=None)
