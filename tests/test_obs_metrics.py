"""The streaming metrics exporter, Prometheus renderer, and report
builder (``repro.obs.metrics`` / ``repro.obs.report``)."""

import io
import json

import pytest

from repro.obs.metrics import (MetricsExporter, read_metrics_jsonl,
                               render_prometheus)
from repro.obs.report import (build_timer_tree, extract_perf_snapshot,
                              render_html, render_markdown,
                              render_timer_tree, summarize_metrics)
from repro.util.perf import PerfRegistry


def _rows(buffer: io.StringIO):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestExporter:
    def test_counter_deltas_per_window(self):
        reg = PerfRegistry()
        out = io.StringIO()
        exporter = MetricsExporter(reg, out)
        reg.counter("pkts", 5)
        exporter.emit_window(1.0)
        reg.counter("pkts", 3)
        reg.counter("drops", 1)
        exporter.emit_window(2.0)
        exporter.emit_window(3.0)
        rows = _rows(out)
        assert rows[0]["counters"] == {"pkts": 5}
        assert rows[1]["counters"] == {"pkts": 3, "drops": 1}
        # Zero deltas are omitted entirely.
        assert rows[2]["counters"] == {}
        assert [row["window"] for row in rows] == [0, 1, 2]
        assert [row["t"] for row in rows] == [1.0, 2.0, 3.0]

    def test_deterministic_mode_drops_wall_clock_timer_fields(self):
        reg = PerfRegistry()
        out = io.StringIO()
        exporter = MetricsExporter(reg, out)
        with reg.timed("work"):
            pass
        exporter.emit_window(1.0)
        row = _rows(out)[0]
        assert row["timers"]["work"] == {"calls": 1}

    def test_non_deterministic_mode_keeps_seconds(self):
        reg = PerfRegistry()
        out = io.StringIO()
        exporter = MetricsExporter(reg, out, deterministic=False)
        with reg.timed("work"):
            pass
        exporter.emit_window(1.0)
        row = _rows(out)[0]
        timer = row["timers"]["work"]
        assert timer["calls"] == 1
        assert "seconds" in timer and "mean" in timer and "max" in timer

    def test_counters_fn_folds_external_source(self):
        reg = PerfRegistry()
        out = io.StringIO()
        external = {"messages.join": 0}
        exporter = MetricsExporter(reg, out, counters_fn=lambda: external)
        external["messages.join"] = 7
        exporter.emit_window(1.0)
        external["messages.join"] = 9
        exporter.emit_window(2.0)
        rows = _rows(out)
        assert rows[0]["counters"] == {"messages.join": 7}
        assert rows[1]["counters"] == {"messages.join": 2}

    def test_histogram_rows_report_cumulative_and_new(self):
        reg = PerfRegistry()
        out = io.StringIO()
        exporter = MetricsExporter(reg, out)
        for v in (1, 2, 3):
            reg.observe("lat", v)
        exporter.emit_window(1.0)
        reg.observe("lat", 10)
        exporter.emit_window(2.0)
        rows = _rows(out)
        assert rows[0]["histograms"]["lat"]["count"] == 3
        assert rows[0]["histograms"]["lat"]["new"] == 3
        assert rows[1]["histograms"]["lat"]["count"] == 4
        assert rows[1]["histograms"]["lat"]["new"] == 1
        assert rows[1]["histograms"]["lat"]["max"] == 10
        for key in ("p50", "p95", "p99"):
            assert key in rows[1]["histograms"]["lat"]

    def test_identical_update_sequences_are_byte_identical(self):
        def run() -> str:
            reg = PerfRegistry()
            out = io.StringIO()
            exporter = MetricsExporter(reg, out, source="det")
            for window in range(4):
                reg.counter("a", window + 1)
                reg.gauge("depth", 10 - window)
                reg.observe("lat", window * 0.5)
                with reg.timed("t"):
                    pass
                exporter.emit_window(float(window))
            return out.getvalue()

        assert run() == run()

    def test_extra_fields_and_source_stamped(self):
        reg = PerfRegistry()
        out = io.StringIO()
        exporter = MetricsExporter(reg, out, source="scenario-x")
        exporter.emit_window(1.0, extra={"live_hosts": 12})
        row = _rows(out)[0]
        assert row["source"] == "scenario-x"
        assert row["live_hosts"] == 12

    def test_file_path_roundtrip_and_close(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        reg = PerfRegistry()
        with MetricsExporter(reg, path) as exporter:
            reg.counter("x")
            exporter.emit_window(1.0)
        rows = read_metrics_jsonl(path)
        assert rows[0]["counters"] == {"x": 1}
        with pytest.raises(ValueError):
            exporter.emit_window(2.0)


class TestPrometheus:
    def test_sections_and_name_mangling(self):
        reg = PerfRegistry()
        reg.counter("fwd.packets", 12)
        reg.gauge("ring.depth", 3)
        with reg.timed("spf.rebuild"):
            pass
        reg.observe("lat", 2.0)
        text = render_prometheus(reg)
        assert "# TYPE repro_fwd_packets_total counter" in text
        assert "repro_fwd_packets_total 12" in text
        assert "repro_ring_depth 3" in text
        assert "repro_spf_rebuild_calls_total 1" in text
        assert "repro_spf_rebuild_seconds_total" in text
        assert 'repro_lat{quantile="0.5"} 2' in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")

    def test_accepts_snapshot_dict_and_sorts_deterministically(self):
        snap = {"counters": {"b": 2, "a": 1}, "gauges": {}}
        text = render_prometheus(snap, prefix="x")
        assert text.index("x_a_total") < text.index("x_b_total")
        assert render_prometheus(snap, prefix="x") == text


class TestReport:
    METRICS = [
        {"t": 1.0, "window": 0, "counters": {"pkts": 5, "joins": 2},
         "gauges": {}, "timers": {}, "histograms": {}},
        {"t": 2.0, "window": 1, "counters": {"pkts": 7},
         "gauges": {}, "timers": {}, "histograms": {}},
    ]
    TIMERS = {
        "inter.join": {"calls": 4, "seconds": 2.0, "mean": 0.5, "max": 1.0},
        "inter.join.fingers": {"calls": 4, "seconds": 1.5, "mean": 0.375,
                               "max": 0.9},
        "spf.rebuild": {"calls": 1, "seconds": 0.2, "mean": 0.2, "max": 0.2},
    }

    def test_summarize_metrics_totals(self):
        info = summarize_metrics(self.METRICS)
        assert info["windows"] == 2
        assert info["t_start"] == 1.0 and info["t_end"] == 2.0
        assert info["counter_totals"] == {"pkts": 12, "joins": 2}

    def test_timer_tree_nests_dotted_names(self):
        tree = build_timer_tree(self.TIMERS)
        inter = tree["children"]["inter"]
        assert inter["row"] is None
        join = inter["children"]["join"]
        assert join["row"]["calls"] == 4
        assert join["children"]["fingers"]["row"]["seconds"] == 1.5

    def test_render_timer_tree_orders_heaviest_first(self):
        lines = "\n".join(render_timer_tree(self.TIMERS))
        assert lines.index("inter") < lines.index("spf")
        assert "fingers" in lines

    def test_markdown_report_sections(self):
        doc = render_markdown("Title", metrics_rows=self.METRICS,
                              perf_snapshot={"timers": self.TIMERS})
        assert doc.startswith("# Title")
        assert "## Metrics stream" in doc
        assert "## Timer tree" in doc
        assert "| window | t |" in doc

    def test_html_report_is_self_contained(self):
        doc = render_html("T&T", metrics_rows=self.METRICS,
                          perf_snapshot={"timers": self.TIMERS},
                          bench={"interdomain": [
                              {"hosts": 100, "join_seconds": 1.0,
                               "joins_per_sec": 100.0, "send_seconds": 0.5,
                               "sends_per_sec": 200.0, "peak_rss_mb": 50.0,
                               "perf": {"timers": {}}}]})
        assert doc.startswith("<!DOCTYPE html>")
        assert "T&amp;T" in doc
        assert "<style>" in doc and "<svg" in doc
        assert "Scaling trajectory" in doc
        assert "http" not in doc.split("</style>")[1]  # no external assets

    def test_extract_perf_snapshot_shapes(self):
        assert extract_perf_snapshot({"timers": self.TIMERS}) == {
            "timers": self.TIMERS}
        assert extract_perf_snapshot(
            {"perf": {"timers": self.TIMERS}}) == {"timers": self.TIMERS}
        bench = {"interdomain": [
            {"hosts": 10, "perf": {"timers": {}}},
            {"hosts": 100, "perf": {"timers": self.TIMERS}}]}
        assert extract_perf_snapshot(bench) == {"timers": self.TIMERS}
        assert extract_perf_snapshot({"nothing": True}) is None
