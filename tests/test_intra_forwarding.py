"""Greedy forwarding (Algorithm 2): delivery, stretch, caches, lookups."""

import pytest

from repro.idspace.identifier import FlatId
from repro.intra import forwarding
from repro.intra.network import IntraDomainNetwork
from repro.topology.isp import synthetic_isp


class TestDelivery:
    def test_all_pairs_deliver(self, intra_net_readonly):
        net = intra_net_readonly
        names = sorted(net.hosts)[:12]
        for a in names[:6]:
            for b in names[6:]:
                result = net.send(a, b)
                assert result.delivered
                assert result.hops >= 0
                assert result.path[0] == net.hosts[a].router
                assert result.path[-1] == net.hosts[b].router

    def test_path_follows_live_links(self, intra_net_readonly):
        net = intra_net_readonly
        a, b = net.random_host_pair()
        result = net.send(a, b)
        for x, y in zip(result.path, result.path[1:]):
            assert net.lsmap.is_link_up(x, y)

    def test_same_router_delivery_is_free(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        router = net.topology.edge_routers()[0]
        h1 = net.next_planned_host()
        h2 = net.next_planned_host()
        net.join_host(h1, via_router=router)
        net.join_host(h2, via_router=router)
        result = net.send(h1.name, h2.name)
        assert result.delivered and result.hops == 0

    def test_send_to_self_id(self, intra_net_readonly):
        net = intra_net_readonly
        name = sorted(net.hosts)[0]
        vn = net.hosts[name]
        result = net.send_to_id(vn.router, vn.id)
        assert result.delivered and result.hops == 0

    def test_nonexistent_id_fails_cleanly(self, intra_net_readonly):
        net = intra_net_readonly
        missing = FlatId(0xDEAD_BEEF_0000_1111)
        assert missing not in net.vn_index
        result = net.send_to_id(net.topology.routers[0], missing)
        assert not result.delivered

    def test_stretch_at_least_one(self, intra_net_readonly):
        net = intra_net_readonly
        for _ in range(30):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            if result.optimal_hops > 0:
                assert result.stretch >= 1.0 - 1e-9


class TestLookupMode:
    def test_lookup_finds_global_predecessor(self, intra_net_readonly):
        net = intra_net_readonly
        members = sorted(net.ring_members(), key=lambda v: v.id)
        target = FlatId(members[5].id.value + 1)
        if target in net.vn_index:
            target = FlatId(target.value + 1)
        outcome = forwarding.route(net, net.topology.routers[0], target,
                                   mode="lookup", category="test")
        assert outcome.delivered
        # Oracle check: the answer is the true ring predecessor.
        expected = max((vn for vn in members if vn.id < target),
                       default=members[-1], key=lambda v: v.id)
        assert outcome.final_vn.id == expected.id

    def test_lookup_from_every_fifth_router_agrees(self, intra_net_readonly):
        net = intra_net_readonly
        target = FlatId(0x7777_7777)
        answers = set()
        for router in net.topology.routers[::5]:
            outcome = forwarding.route(net, router, target, mode="lookup",
                                       category="test")
            assert outcome.delivered
            answers.add(outcome.final_vn.id)
        assert len(answers) == 1

    def test_invalid_mode_rejected(self, intra_net_readonly):
        with pytest.raises(ValueError):
            forwarding.route(intra_net_readonly,
                             intra_net_readonly.topology.routers[0],
                             FlatId(1), mode="bogus")


class TestCaches:
    def test_caches_cut_stretch(self):
        topo = synthetic_isp(n_routers=60, seed=11)
        cold = IntraDomainNetwork(topo, cache_entries=0, seed=11)
        warm = IntraDomainNetwork(synthetic_isp(n_routers=60, seed=11),
                                  cache_entries=4096, seed=11)
        cold.join_random_hosts(150)
        warm.join_random_hosts(150)
        def avg_stretch(net):
            vals = []
            for _ in range(120):
                a, b = net.random_host_pair()
                r = net.send(a, b)
                if r.delivered and r.optimal_hops > 0:
                    vals.append(r.stretch)
            return sum(vals) / len(vals)
        assert avg_stretch(warm) < avg_stretch(cold)

    def test_cache_hits_recorded(self, intra_net_readonly):
        net = intra_net_readonly
        for _ in range(20):
            a, b = net.random_host_pair()
            net.send(a, b)
        assert net.cache_stats()["hits"] > 0

    def test_zero_cache_network_still_delivers(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, cache_entries=0)
        for _ in range(25):
            a, b = net.random_host_pair()
            assert net.send(a, b).delivered


class TestAccounting:
    def test_data_messages_charged(self, intra_net_factory):
        net = intra_net_factory(n_hosts=20)
        before = net.stats.total_messages("data")
        a, b = net.random_host_pair()
        result = net.send(a, b)
        assert net.stats.total_messages("data") - before == result.hops

    def test_pointer_hops_reported(self, intra_net_readonly):
        net = intra_net_readonly
        a, b = net.random_host_pair()
        result = net.send(a, b)
        if result.hops > 0:
            assert result.pointer_hops >= 1
