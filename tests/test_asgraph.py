"""AS-graph generator and relationship-annotation invariants."""

import pytest

from repro.topology.asgraph import ASGraph, Relationship, synthetic_as_graph


def tiny_graph():
    asg = ASGraph()
    asg.add_as("T1a", tier=1)
    asg.add_as("T1b", tier=1)
    asg.add_as("T2", tier=2)
    asg.add_as("S1", tier=3, hosts=10)
    asg.add_as("S2", tier=3, hosts=5)
    asg.add_peering("T1a", "T1b")
    asg.add_customer_provider("T2", "T1a")
    asg.add_customer_provider("S1", "T2")
    asg.add_customer_provider("S2", "T2")
    asg.add_customer_provider("S2", "T1b", backup=True)
    return asg


class TestASGraph:
    def test_relationship_queries(self):
        asg = tiny_graph()
        assert asg.providers("S1") == ["T2"]
        assert asg.backup_providers("S2") == ["T1b"]
        assert set(asg.customers("T2")) == {"S1", "S2"}
        assert asg.customers("T1b", include_backup=False) == []
        assert asg.peers("T1a") == ["T1b"]
        assert asg.relationship("T2", "T1a") is Relationship.CUSTOMER_PROVIDER
        assert asg.relationship("S1", "S2") is None

    def test_is_provider_of_direction(self):
        asg = tiny_graph()
        assert asg.is_provider_of("T2", "S1")
        assert not asg.is_provider_of("S1", "T2")

    def test_tier1_and_stubs(self):
        asg = tiny_graph()
        assert set(asg.tier1()) == {"T1a", "T1b"}
        assert set(asg.stubs()) == {"S1", "S2"}

    def test_multihomed(self):
        asg = tiny_graph()
        assert asg.multihomed() == ["S2"]

    def test_hosts(self):
        asg = tiny_graph()
        assert asg.hosts("S1") == 10
        asg.set_hosts("S1", 20)
        assert asg.hosts("S1") == 20

    def test_duplicate_as_rejected(self):
        asg = tiny_graph()
        with pytest.raises(ValueError):
            asg.add_as("S1")

    def test_self_relationship_rejected(self):
        asg = tiny_graph()
        with pytest.raises(ValueError):
            asg.add_peering("S1", "S1")

    def test_unknown_as_rejected(self):
        asg = tiny_graph()
        with pytest.raises(KeyError):
            asg.add_customer_provider("S1", "nope")

    def test_validate_accepts_tiny_graph(self):
        tiny_graph().validate()

    def test_validate_rejects_provider_cycle(self):
        asg = tiny_graph()
        asg.add_customer_provider("T1a", "S1")  # S1 provides for T1a: cycle
        with pytest.raises(ValueError):
            asg.validate()


class TestSyntheticAsGraph:
    def test_basic_shape(self):
        asg = synthetic_as_graph(n_ases=80, seed=0)
        assert asg.n_ases == 80
        asg.validate()
        assert len(asg.tier1()) >= 3
        assert len(asg.stubs()) > 80 * 0.4

    def test_tier1_is_a_peering_clique(self):
        asg = synthetic_as_graph(n_ases=60, seed=1)
        tier1 = asg.tier1()
        for a in tier1:
            for b in tier1:
                if a != b:
                    assert asg.relationship(a, b) is Relationship.PEER

    def test_every_non_tier1_reaches_tier1_via_providers(self):
        asg = synthetic_as_graph(n_ases=60, seed=2)
        tier1 = set(asg.tier1())
        for asn in asg.ases():
            current = {asn}
            seen = set()
            while current and not (current & tier1):
                seen |= current
                nxt = set()
                for x in current:
                    nxt |= set(asg.providers(x)) | set(asg.backup_providers(x))
                current = nxt - seen
            assert current & tier1 or asn in tier1

    def test_host_totals(self):
        asg = synthetic_as_graph(n_ases=60, seed=3, total_hosts=5000)
        assert sum(asg.hosts(a) for a in asg.ases()) == 5000
        # Transit core carries no endpoints.
        assert all(asg.hosts(t) == 0 for t in asg.tier1())

    def test_host_distribution_is_skewed(self):
        asg = synthetic_as_graph(n_ases=100, seed=4, total_hosts=50_000)
        counts = sorted((asg.hosts(a) for a in asg.ases()), reverse=True)
        top5 = sum(counts[:5])
        assert top5 > 0.25 * 50_000  # heavy head, Zipf-like

    def test_determinism(self):
        a = synthetic_as_graph(n_ases=50, seed=5)
        b = synthetic_as_graph(n_ases=50, seed=5)
        assert sorted((x, y, r.value) for x, y, r in a.links()) == \
               sorted((x, y, r.value) for x, y, r in b.links())

    def test_multihoming_and_backup_exist(self):
        asg = synthetic_as_graph(n_ases=120, seed=6)
        assert len(asg.multihomed()) > 0
        assert any(asg.backup_providers(a) for a in asg.ases())

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            synthetic_as_graph(n_ases=3)
