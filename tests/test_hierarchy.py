"""Up-/down-hierarchy computation and the isolation-region machinery."""

import pytest

from repro.topology.asgraph import ASGraph
from repro.topology.hierarchy import (HierarchyIndex, down_hierarchy,
                                      subtree_hosts, up_hierarchy,
                                      up_hierarchy_levels)


@pytest.fixture()
def diamond():
    """T1 over two T2s over one multihomed stub + one single-homed stub."""
    asg = ASGraph()
    asg.add_as("T1", tier=1)
    asg.add_as("T2a", tier=2)
    asg.add_as("T2b", tier=2)
    asg.add_as("S-multi", tier=3, hosts=10)
    asg.add_as("S-single", tier=3, hosts=4)
    asg.add_as("S-backup", tier=3, hosts=2)
    asg.add_customer_provider("T2a", "T1")
    asg.add_customer_provider("T2b", "T1")
    asg.add_customer_provider("S-multi", "T2a")
    asg.add_customer_provider("S-multi", "T2b")
    asg.add_customer_provider("S-single", "T2a")
    asg.add_customer_provider("S-backup", "T2b")
    asg.add_customer_provider("S-backup", "T2a", backup=True)
    return asg


def test_up_hierarchy_covers_all_provider_paths(diamond):
    gx = up_hierarchy(diamond, "S-multi")
    assert set(gx.nodes) == {"S-multi", "T2a", "T2b", "T1"}
    assert gx.has_edge("S-multi", "T2a") and gx.has_edge("S-multi", "T2b")
    assert gx.has_edge("T2a", "T1")


def test_up_hierarchy_excludes_backup_by_default(diamond):
    gx = up_hierarchy(diamond, "S-backup")
    assert "T2a" not in gx.nodes
    gx_backup = up_hierarchy(diamond, "S-backup", include_backup=True)
    assert "T2a" in gx_backup.nodes


def test_up_hierarchy_pruning(diamond):
    gx = up_hierarchy(diamond, "S-multi", prune={"T2b"})
    assert "T2b" not in gx.nodes
    assert "T1" in gx.nodes  # still reachable via T2a


def test_up_hierarchy_levels(diamond):
    levels = up_hierarchy_levels(diamond, "S-multi")
    assert levels[0] == {"S-multi"}
    assert levels[1] == {"T2a", "T2b"}
    assert levels[2] == {"T1"}


def test_down_hierarchy(diamond):
    assert down_hierarchy(diamond, "T2a") == {"T2a", "S-multi", "S-single"}
    assert down_hierarchy(diamond, "T1") == {
        "T1", "T2a", "T2b", "S-multi", "S-single", "S-backup"}


def test_down_hierarchy_backup_exclusion(diamond):
    # S-backup hangs off T2a only through a backup link.
    assert "S-backup" not in down_hierarchy(diamond, "T2a")
    assert "S-backup" in down_hierarchy(diamond, "T2a", include_backup=True)


def test_subtree_hosts(diamond):
    assert subtree_hosts(diamond, "T2a") == 14
    assert subtree_hosts(diamond, "T1") == 16


class TestHierarchyIndex:
    def test_up_chain_starts_at_self(self, diamond):
        idx = HierarchyIndex(diamond)
        chain = idx.up_chain("S-multi")
        assert chain[0] == "S-multi"
        assert set(chain) == {"S-multi", "T2a", "T2b", "T1"}

    def test_in_subtree(self, diamond):
        idx = HierarchyIndex(diamond)
        assert idx.in_subtree("S-multi", "T2a")
        assert not idx.in_subtree("S-backup", "T2a")

    def test_common_ancestors(self, diamond):
        idx = HierarchyIndex(diamond)
        assert idx.common_ancestors("S-multi", "S-single") == {"T2a", "T1"}

    def test_earliest_common_ancestors(self, diamond):
        idx = HierarchyIndex(diamond)
        assert idx.earliest_common_ancestors("S-multi", "S-single") == {"T2a"}
        assert idx.earliest_common_ancestors("S-single", "S-backup") == {"T1"}

    def test_isolation_region_excludes_unrelated_branch(self, diamond):
        idx = HierarchyIndex(diamond)
        region = idx.isolation_region("S-multi", "S-single")
        assert region == {"T2a", "S-multi", "S-single"}
        # Cross-branch pairs may use the whole tree.
        wide = idx.isolation_region("S-single", "S-backup")
        assert "T1" in wide

    def test_isolation_region_of_same_as(self, diamond):
        idx = HierarchyIndex(diamond)
        assert "S-multi" in idx.isolation_region("S-multi", "S-multi")
