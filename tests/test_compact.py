"""The Disco-style compact-routing plane: election, balls, resolution,
bounded-stretch forwarding, and the stretch-bound probe."""

import pytest

from repro.compact import (DiscoNetwork, LocatorCache, ResolverDirectory,
                           build_plan, elect_landmarks, landmark_count,
                           resolver_of)
from repro.compact.resolve import Locator
from repro.idspace.identifier import FlatId
from repro.linkstate.lsdb import LinkStateMap
from repro.linkstate.spf import PathCache
from repro.obs import explain, trace
from repro.obs.probes import ProbeSet, StretchBoundProbe
from repro.obs.trace import TraceRecord, Tracer
from repro.topology.isp import synthetic_isp
from repro.util.rng import RngRegistry


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    trace.uninstall()


@pytest.fixture()
def topo():
    return synthetic_isp(n_routers=40, seed=3)


@pytest.fixture()
def net(topo):
    network = DiscoNetwork(topo, seed=0)
    network.join_random_hosts(40)
    return network


class TestLandmarks:
    def test_count_is_sqrt_clamped(self):
        assert landmark_count(1) == 1
        assert landmark_count(100) == 10
        assert landmark_count(50) == 8          # ceil(sqrt(50))
        assert landmark_count(4, factor=10.0) == 4   # clamped to R
        with pytest.raises(ValueError):
            landmark_count(0)

    def test_election_is_deterministic(self, topo):
        routers = list(topo.routers)
        a = elect_landmarks(routers, RngRegistry(7).derive("compact",
                                                           "landmarks"))
        b = elect_landmarks(list(reversed(routers)),
                            RngRegistry(7).derive("compact", "landmarks"))
        assert a == b == sorted(a)
        assert len(a) == landmark_count(len(routers))

    def test_plan_home_and_radius_match_fresh_spf(self, topo):
        paths = PathCache(LinkStateMap(topo))
        routers = list(topo.routers)
        landmarks = elect_landmarks(routers,
                                    RngRegistry(0).derive("x"))
        plan = build_plan(paths, routers, landmarks)
        for router in routers:
            dists = {lm: paths.hop_dist(router, lm) for lm in landmarks}
            best = min(dists.values())
            assert plan.radius[router] == best
            assert dists[plan.home[router]] == best
        for landmark in landmarks:
            assert plan.is_landmark(landmark)
            assert plan.radius[landmark] == 0
            assert plan.ball[landmark] == set()

    def test_balls_are_closed_under_shortest_paths(self, topo):
        """The advertisement-cost argument: a shortest path to a ball
        member never leaves the ball."""
        paths = PathCache(LinkStateMap(topo))
        routers = list(topo.routers)
        plan = build_plan(paths, routers,
                          elect_landmarks(routers, RngRegistry(1).derive("x")))
        for router in routers:
            for member in plan.ball[router]:
                path = paths.hop_path(router, member)
                assert all(node in plan.ball[router] for node in path[1:-1])


class TestResolution:
    def test_resolver_hashing_is_stable_and_total(self):
        landmarks = ["r1", "r5", "r9"]
        for value in range(50):
            host_id = FlatId(value)
            assert resolver_of(host_id, landmarks) == \
                landmarks[value % len(landmarks)]
        with pytest.raises(ValueError):
            resolver_of(FlatId(1), [])

    def test_directory_register_withdraw(self):
        directory = ResolverDirectory(["r1", "r2"])
        locator = Locator(host_id=FlatId(4), attach_router="r7",
                          home_landmark="r1")
        assert directory.register(locator) == directory.resolver_of(FlatId(4))
        assert directory.lookup(FlatId(4)) == locator
        assert len(directory) == 1
        assert sum(directory.entries_per_landmark().values()) == 1
        assert directory.withdraw(FlatId(4)) is not None
        assert directory.lookup(FlatId(4)) is None
        assert directory.withdraw(FlatId(4)) is None

    def test_cache_lru_and_counters(self):
        cache = LocatorCache(capacity=2)
        locs = [Locator(FlatId(i), "r{}".format(i), "L") for i in range(3)]
        assert cache.get(FlatId(0)) is None and cache.misses == 1
        cache.put(locs[0])
        cache.put(locs[1])
        assert cache.get(FlatId(0)) == locs[0] and cache.hits == 1
        cache.put(locs[2])                    # evicts FlatId(1), the LRU
        assert cache.evictions == 1
        assert FlatId(1) not in cache and FlatId(0) in cache
        assert cache.invalidate(FlatId(0)) and cache.invalidations == 1
        assert not cache.invalidate(FlatId(0))

    def test_zero_capacity_cache_never_stores(self):
        cache = LocatorCache(capacity=0)
        cache.put(Locator(FlatId(1), "r1", "L"))
        assert len(cache) == 0
        with pytest.raises(ValueError):
            LocatorCache(capacity=-1)


class TestDiscoNetwork:
    def test_join_accounting_matches_stats(self, topo):
        net = DiscoNetwork(topo, seed=0)
        costs = net.join_random_hosts(10)
        assert costs == net.stats.operation_costs("join")
        assert all(c >= 0 for c in costs)
        assert net.stats.total_messages("bootstrap") > 0

    def test_join_advertises_into_ball(self, net):
        name = net.hosts.names[0]
        host_id = net.hosts[name]
        attach = net.host_location[host_id]
        assert host_id in net.vicinity_ids[attach]
        for member in net.plan.ball[attach]:
            assert host_id in net.vicinity_ids[member]

    def test_leave_withdraws_everywhere(self, net):
        name = net.hosts.names[0]
        host_id = net.hosts[name]
        assert net.leave_host(name) > 0
        assert net.directory.lookup(host_id) is None
        assert all(host_id not in ids for ids in net.vicinity_ids.values())
        assert net.stats.total_messages("leave") > 0

    def test_all_pairs_delivered_within_bound(self, net):
        names = net.hosts.names[:15]
        for a in names:
            for b in names:
                if a == b:
                    continue
                result = net.send(a, b)
                assert result.delivered
                if result.optimal_hops > 0:
                    assert result.stretch <= net.stretch_bound + 1e-9

    def test_repeat_send_hits_locator_cache(self, net):
        a, b = net.hosts.names[0], net.hosts.names[-1]
        net.send(a, b)
        before = net.stats.total_messages("lookup")
        hits_before = net.cache_stats()["hits"]
        net.send(a, b)
        if net.host_location[net.hosts[b]] != \
                net.host_location[net.hosts[a]]:
            assert net.cache_stats()["hits"] == hits_before + 1
            assert net.stats.total_messages("lookup") == before

    def test_stale_cache_detected_on_use(self, net):
        """Validate-on-use: a cached locator that disagrees with the
        directory is invalidated and re-resolved at full lookup cost."""
        names = net.hosts.names
        a, b = names[0], names[-1]
        host_id = net.hosts[b]
        src = net.host_location[net.hosts[a]]
        old = net.host_location[host_id]
        if src == old:
            a = names[1]
            src = net.host_location[net.hosts[a]]
        net.send(a, b)                         # populates src's cache
        assert host_id in net.caches[src]
        # Move b to a different attachment point behind the cache's back.
        new_attach = next(r for r in sorted(net.topology.routers)
                          if r not in (old, src))
        net.directory.withdraw(host_id)
        net.directory.register(Locator(host_id=host_id,
                                       attach_router=new_attach,
                                       home_landmark=net.plan.home[new_attach]))
        net.host_location[host_id] = new_attach
        net.vicinity_ids[old].discard(host_id)
        for member in net.plan.ball[old]:
            net.vicinity_ids[member].discard(host_id)
        net.vicinity_ids[new_attach].add(host_id)
        for member in net.plan.ball[new_attach]:
            net.vicinity_ids[member].add(host_id)
        invalidations = net.cache_stats()["invalidations"]
        result = net.send(a, b)
        assert result.delivered
        assert result.path[-1] == new_attach
        assert net.cache_stats()["invalidations"] == invalidations + 1

    def test_unknown_id_pays_lookup_and_fails(self, net):
        src = sorted(net.topology.routers)[0]
        before = net.stats.total_messages("lookup")
        result = net.send_to_id(src, FlatId(2**100 + 17))
        assert not result.delivered
        assert net.stats.total_messages("lookup") >= before

    def test_memory_counts_all_four_tables(self, net):
        mem = net.memory_entries_per_router()
        assert set(mem) == set(net.topology.routers)
        landmark = net.landmarks[0]
        assert mem[landmark] >= net.plan.n_landmarks
        total_vicinity = sum(len(v) for v in net.vicinity_ids.values())
        total_shard = len(net.directory)
        assert sum(mem.values()) >= total_vicinity + total_shard

    def test_same_seed_is_deterministic(self, topo):
        a = DiscoNetwork(topo, seed=5)
        b = DiscoNetwork(topo, seed=5)
        a.join_random_hosts(12)
        b.join_random_hosts(12)
        assert a.landmarks == b.landmarks
        assert list(a.hosts) == list(b.hosts)
        pair = a.random_host_pair()
        assert pair == b.random_host_pair()
        assert a.send(*pair).path == b.send(*pair).path


class TestStretchBoundProbe:
    def test_for_network_attaches_probe(self, net):
        probes = ProbeSet.for_network(net)
        assert {p.name for p in probes.probes} == {"stretch-bound"}

    def test_healthy_network_ticks_clean(self, net):
        assert ProbeSet.for_network(net).tick(0.0) == 0

    def test_bound_breach_is_reported(self):
        probe = StretchBoundProbe()
        violations = []
        record = TraceRecord(seq=1, t=0.0, span=1, parent=-1, kind="end",
                             data={"delivered": True, "hops": 10,
                                   "optimal": 2, "bound": 3.0})
        probe.on_record(record, lambda **d: violations.append(d))
        assert violations and \
            violations[0]["kind"] == "stretch-bound-exceeded"

    def test_compliant_end_records_pass(self):
        probe = StretchBoundProbe()
        violations = []
        for hops, optimal in ((6, 2), (3, 1), (0, 0)):
            record = TraceRecord(seq=1, t=0.0, span=1, parent=-1, kind="end",
                                 data={"delivered": True, "hops": hops,
                                       "optimal": optimal, "bound": 3.0})
            probe.on_record(record, lambda **d: violations.append(d))
        assert violations == []

    def test_corrupted_radius_caught_by_sweep(self, net):
        router = next(r for r in sorted(net.topology.routers)
                      if net.plan.radius[r] > 0)
        net.plan.radius[router] += 1
        violations = []
        StretchBoundProbe(net).check(lambda **d: violations.append(d))
        net.plan.radius[router] -= 1
        assert any(v["kind"] == "radius-disagreement" for v in violations)

    def test_stale_locator_caught_by_sweep(self, net):
        # Corrupt a locator the bounded deterministic sweep will sample.
        host_id = StretchBoundProbe(net)._sample(net.host_location)[0]
        actual = net.host_location[host_id]
        other = next(r for r in sorted(net.topology.routers) if r != actual)
        net.host_location[host_id] = other
        violations = []
        StretchBoundProbe(net).check(lambda **d: violations.append(d))
        net.host_location[host_id] = actual
        assert any(v["kind"] == "locator-stale" for v in violations)


class TestExplainIntegration:
    def test_attribution_sums_to_stretch(self, net):
        tracer = Tracer(trace.RingBufferSink(capacity=None))
        results = []
        with trace.tracing(tracer):
            for _ in range(40):
                a, b = net.random_host_pair()
                results.append(net.send(a, b))
        packets = explain.explain_packets(tracer.sink.records())
        assert len(packets) == len(results)
        rules = set()
        for packet, result in zip(packets, results):
            assert packet.root.kind == "compact.packet"
            assert packet.delivered == result.delivered
            assert packet.hops == result.hops
            total = packet.total_stretch(result.optimal_hops)
            assert total == pytest.approx(result.stretch, abs=1e-9)
            rules.update(seg.rule for seg in packet.segments)
        assert rules <= {"vicinity.direct", "vicinity.shortcut",
                         "landmark.route", "landmark.descend"}

    def test_end_records_carry_bound_for_the_probe(self, net):
        tracer = Tracer(trace.RingBufferSink(capacity=None))
        probes = ProbeSet.for_network(net, tracer=tracer)
        with trace.tracing(tracer):
            a, b = net.random_host_pair()
            net.send(a, b)
        probes.detach()
        ends = [r for r in tracer.sink.records() if r.kind == "end"]
        assert ends and all("bound" in r.data and "optimal" in r.data
                            for r in ends)
        assert probes.violations == []
