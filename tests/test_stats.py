"""Measurement plumbing: charging, operation scoping, CDF helpers."""

import math

import pytest

from repro.sim.stats import PathResult, StatsCollector, cdf_points, percentile


class TestCharging:
    def test_charge_path_counts_links_not_nodes(self):
        stats = StatsCollector()
        assert stats.charge_path(["a", "b", "c"], "data") == 2
        assert stats.total_messages("data") == 2

    def test_single_node_path_is_free(self):
        stats = StatsCollector()
        assert stats.charge_path(["a"], "data") == 0

    def test_traversals_skip_origin(self):
        stats = StatsCollector()
        stats.charge_path(["a", "b", "c"])
        load = stats.load_series()
        assert "a" not in load and load["b"] == 1 and load["c"] == 1

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            StatsCollector().charge_hops(-1)

    def test_total_messages_across_categories(self):
        stats = StatsCollector()
        stats.charge_hops(3, "join")
        stats.charge_hops(2, "data")
        assert stats.total_messages() == 5
        assert stats.total_messages("join") == 3

    def test_reset_load_keeps_messages(self):
        stats = StatsCollector()
        stats.charge_path(["a", "b"])
        stats.reset_load()
        assert stats.load_series() == {}
        assert stats.total_messages() == 1


class TestOperations:
    def test_operation_attribution(self):
        stats = StatsCollector()
        with stats.operation("join", host="h1") as op:
            stats.charge_hops(5, "join")
        assert op["messages"] == 5
        assert stats.operation_costs("join") == [5]

    def test_nested_operations_both_charged(self):
        stats = StatsCollector()
        with stats.operation("outer"):
            with stats.operation("inner"):
                stats.charge_hops(2)
        assert stats.operation_costs("outer") == [2]
        assert stats.operation_costs("inner") == [2]

    def test_charges_outside_scope_not_attributed(self):
        stats = StatsCollector()
        with stats.operation("join"):
            pass
        stats.charge_hops(9)
        assert stats.operation_costs("join") == [0]

    def test_reentrant_same_kind_scopes_stay_distinct(self):
        """Same-kind scopes nest (a join triggering a repair that joins a
        replacement): each open record accumulates independently and both
        close in inner-first order."""
        stats = StatsCollector()
        with stats.operation("join", host="outer") as outer:
            stats.charge_hops(1, "join")
            with stats.operation("join", host="inner") as inner:
                stats.charge_hops(2, "join")
            stats.charge_hops(4, "join")
        assert inner["messages"] == 2
        assert outer["messages"] == 7
        assert stats.operation_costs("join") == [2, 7]
        assert [op["host"] for op in stats.operations] == ["inner", "outer"]

    def test_scope_closes_even_on_exception(self):
        stats = StatsCollector()
        with pytest.raises(RuntimeError):
            with stats.operation("join"):
                stats.charge_hops(3)
                raise RuntimeError("boom")
        assert stats._open_ops == []
        assert stats.operation_costs("join") == [3]
        # Later charges must not leak into the closed record.
        stats.charge_hops(5)
        assert stats.operation_costs("join") == [3]

    def test_nested_scopes_count_router_traversals_once(self):
        """charge_path attributes traversals globally, not per scope —
        nesting must not double-count the load-balance series."""
        stats = StatsCollector()
        with stats.operation("outer"):
            with stats.operation("inner"):
                stats.charge_path(["a", "b", "c"], "join")
        assert stats.load_series() == {"b": 1, "c": 1}
        assert stats.total_messages("join") == 2


class TestPathResult:
    def test_stretch(self):
        assert PathResult(True, hops=6, optimal_hops=3).stretch == 2.0

    def test_stretch_of_failed_delivery_is_inf(self):
        assert math.isinf(PathResult(False).stretch)

    def test_zero_optimal_means_stretch_zero(self):
        """Same-router delivery has no baseline path; stretch is defined
        as 0.0 (regression: this used to report a fictitious 1.0)."""
        assert PathResult(True, hops=0, optimal_hops=0).stretch == 0.0
        assert PathResult(True, hops=3, optimal_hops=0).stretch == 0.0


class TestCdfHelpers:
    def test_cdf_points(self):
        pts = cdf_points([3, 1, 2])
        assert pts == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]

    def test_cdf_empty(self):
        assert cdf_points([]) == []

    def test_percentile_median(self):
        assert percentile([5, 1, 3], 0.5) == 3

    def test_percentile_bounds(self):
        data = list(range(10))
        assert percentile(data, 0.0) == 0
        assert percentile(data, 1.0) == 9

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)
