"""Security services (Section 5.3): default-off, capabilities."""

import pytest

from repro.idspace.crypto import KeyPair, SignatureAuthority
from repro.services.security import (AccessController, Capability,
                                     CapabilityAuthority)


@pytest.fixture()
def authority():
    return SignatureAuthority()


@pytest.fixture()
def dst_key(authority):
    return KeyPair.generate(b"destination", authority)


@pytest.fixture()
def src_key(authority):
    return KeyPair.generate(b"source", authority)


class TestCapabilities:
    def test_grant_and_verify(self, dst_key, src_key):
        caps = CapabilityAuthority(dst_key)
        cap = caps.grant(src_key.flat_id, expires_at=100.0)
        assert caps.verify(cap, now=10.0, claimed_src=src_key.flat_id)

    def test_lifetime_enforced(self, dst_key, src_key):
        caps = CapabilityAuthority(dst_key)
        cap = caps.grant(src_key.flat_id, expires_at=100.0)
        assert not caps.verify(cap, now=100.1, claimed_src=src_key.flat_id)

    def test_wrong_source_rejected(self, dst_key, src_key, authority):
        caps = CapabilityAuthority(dst_key)
        cap = caps.grant(src_key.flat_id, expires_at=100.0)
        other = KeyPair.generate(b"other", authority)
        assert not caps.verify(cap, now=1.0, claimed_src=other.flat_id)

    def test_forged_signature_rejected(self, dst_key, src_key):
        caps = CapabilityAuthority(dst_key)
        cap = caps.grant(src_key.flat_id, expires_at=100.0)
        forged = Capability(src_id=cap.src_id, dst_id=cap.dst_id,
                            expires_at=999.0,  # extended lifetime
                            allowed_ases=cap.allowed_ases,
                            signature=cap.signature)
        assert not caps.verify(forged, now=200.0, claimed_src=src_key.flat_id)

    def test_capability_bound_to_destination(self, authority, src_key):
        dst1 = KeyPair.generate(b"d1", authority)
        dst2 = KeyPair.generate(b"d2", authority)
        cap = CapabilityAuthority(dst1).grant(src_key.flat_id, 100.0)
        assert not CapabilityAuthority(dst2).verify(
            cap, now=1.0, claimed_src=src_key.flat_id)

    def test_revocation(self, dst_key, src_key):
        caps = CapabilityAuthority(dst_key)
        cap = caps.grant(src_key.flat_id, expires_at=100.0)
        caps.revoke(cap)
        assert not caps.verify(cap, now=1.0, claimed_src=src_key.flat_id)

    def test_path_capability_restricts_ases(self, dst_key, src_key):
        caps = CapabilityAuthority(dst_key)
        cap = caps.grant(src_key.flat_id, 100.0,
                         allowed_ases={"AS1", "AS2", "AS3"})
        ok = caps.verify(cap, 1.0, src_key.flat_id,
                         as_path=("AS1", "AS2", "AS3"))
        bad = caps.verify(cap, 1.0, src_key.flat_id,
                          as_path=("AS1", "AS9", "AS3"))
        assert ok and not bad

    def test_describe(self, dst_key, src_key):
        caps = CapabilityAuthority(dst_key)
        cap = caps.grant(src_key.flat_id, 100.0)
        assert "Capability" in cap.describe()


class TestDefaultOff:
    def test_unregistered_destination_dropped(self, src_key, dst_key):
        controller = AccessController()
        ok, reason = controller.admit(src_key.flat_id, dst_key.flat_id)
        assert not ok and "not registered" in reason

    def test_registered_destination_admits(self, src_key, dst_key):
        controller = AccessController()
        controller.register(dst_key.flat_id)
        ok, _ = controller.admit(src_key.flat_id, dst_key.flat_id)
        assert ok

    def test_allow_list_enforced(self, src_key, dst_key, authority):
        controller = AccessController()
        friend = KeyPair.generate(b"friend", authority)
        controller.register(dst_key.flat_id, allowed_sources={friend.flat_id})
        assert controller.admit(friend.flat_id, dst_key.flat_id)[0]
        assert not controller.admit(src_key.flat_id, dst_key.flat_id)[0]

    def test_allow_source_extends_list(self, src_key, dst_key):
        controller = AccessController()
        controller.register(dst_key.flat_id, allowed_sources=set())
        assert not controller.admit(src_key.flat_id, dst_key.flat_id)[0]
        controller.allow_source(dst_key.flat_id, src_key.flat_id)
        assert controller.admit(src_key.flat_id, dst_key.flat_id)[0]

    def test_deregister_returns_to_default_off(self, src_key, dst_key):
        controller = AccessController()
        controller.register(dst_key.flat_id)
        controller.deregister(dst_key.flat_id)
        assert not controller.admit(src_key.flat_id, dst_key.flat_id)[0]
        assert not controller.is_registered(dst_key.flat_id)
