"""Host population planning (skitter substitute)."""

import pytest

from repro.idspace.crypto import SignatureAuthority
from repro.topology.hosts import (PAPER_INTERNET_HOSTS, HostPlan, scale_down,
                                  zipf_host_counts)


def test_plan_is_deterministic():
    a = HostPlan(["r1", "r2", "r3"], seed=4).take(20)
    b = HostPlan(["r1", "r2", "r3"], seed=4).take(20)
    assert [(h.name, h.attach_at, h.flat_id) for h in a] == \
           [(h.name, h.attach_at, h.flat_id) for h in b]


def test_distinct_seeds_give_distinct_populations():
    a = HostPlan(["r1", "r2"], seed=1).take(10)
    b = HostPlan(["r1", "r2"], seed=2).take(10)
    assert [h.flat_id for h in a] != [h.flat_id for h in b]


def test_ids_are_unique():
    hosts = HostPlan(["r"], seed=0).take(200)
    assert len({h.flat_id for h in hosts}) == 200


def test_weighted_attachment():
    plan = HostPlan(["big", "small"], seed=0, weights=[100.0, 1.0])
    hosts = plan.take(200)
    big = sum(1 for h in hosts if h.attach_at == "big")
    assert big > 150


def test_ephemeral_fraction():
    plan = HostPlan(["r"], seed=0, ephemeral_fraction=0.5)
    hosts = plan.take(300)
    eph = sum(1 for h in hosts if h.ephemeral)
    assert 100 < eph < 200


def test_ephemeral_fraction_bounds():
    with pytest.raises(ValueError):
        HostPlan(["r"], ephemeral_fraction=1.5)


def test_validation():
    with pytest.raises(ValueError):
        HostPlan([])
    with pytest.raises(ValueError):
        HostPlan(["a"], weights=[1.0, 2.0])


def test_keys_registered_with_shared_authority():
    authority = SignatureAuthority()
    host = HostPlan(["r"], seed=0, authority=authority).take(1)[0]
    proof = host.key_pair.prove_ownership(b"c")
    from repro.idspace.crypto import authenticate
    assert authenticate(proof, authority) == host.flat_id


def test_scale_down_proportions():
    assert scale_down(0) == 0
    assert scale_down(PAPER_INTERNET_HOSTS, sim_total=10_000) == 10_000
    # Tiny nonzero populations keep at least one host.
    assert scale_down(1, sim_total=10) == 1


def test_zipf_host_counts():
    counts = zipf_host_counts(10, 1000, seed=3)
    assert sum(counts) == 1000
    assert zipf_host_counts(10, 1000, seed=3) == counts
