"""End-to-end tests for the workload driver and metrics recorder."""

import pytest

from repro.workload.driver import WorkloadDriver, run_scenario
from repro.workload.scenario import (ChurnSpec, FaultSpec, NetworkSpec, Phase,
                                     Scenario, ScenarioError, TrafficSpec,
                                     builtin_scenario)


def _small_scenario(seed=0, **overrides) -> Scenario:
    """A fast (~0.1s) intradomain churn scenario used across these tests."""
    kwargs = dict(
        name="test-small",
        seed=seed,
        duration=20.0,
        warmup_hosts=30,
        sample_interval=5.0,
        network=NetworkSpec(kind="intra", n_routers=16, name="test-small"),
        phases=[Phase(
            name="churn", start=0.0, end=20.0,
            churn=ChurnSpec(arrival_rate=1.5,
                            lifetime={"kind": "pareto", "shape": 1.5,
                                      "scale": 6.0}),
            traffic=TrafficSpec(rate=4.0,
                                popularity={"kind": "zipf",
                                            "exponent": 0.9}))],
        faults=[FaultSpec(kind="link_cut", at=10.0,
                          params={"count": 2, "restore_after": 5.0})],
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def test_same_seed_reproduces_deterministic_view():
    a = run_scenario(_small_scenario(seed=3))
    b = run_scenario(_small_scenario(seed=3))
    assert a.deterministic_view() == b.deterministic_view()


def test_different_seed_diverges():
    a = run_scenario(_small_scenario(seed=1))
    b = run_scenario(_small_scenario(seed=2))
    assert a.deterministic_view() != b.deterministic_view()


def test_deterministic_view_excludes_wall_clock():
    view = run_scenario(_small_scenario()).deterministic_view()
    assert set(view) == {"scenario", "samples", "summary", "totals",
                         "fault_log", "violations"}


def test_time_series_shape_and_totals():
    scenario = _small_scenario()
    result = run_scenario(scenario)
    # One row per sample interval (20 / 5), each carrying the full schema.
    assert [row["t"] for row in result.samples] == [5.0, 10.0, 15.0, 20.0]
    for row in result.samples:
        assert {"live_hosts", "sent", "delivered", "delivery_rate",
                "mean_stretch", "control_messages", "state_entries",
                "joins", "departures", "queue_depth"} <= set(row)
    totals = result.totals
    assert totals["warmup_hosts"] == 30
    assert totals["joins"] > 0
    assert totals["packets_sent"] > 0
    assert sum(r["joins"] for r in result.samples) == totals["joins"]
    assert sum(r["sent"] for r in result.samples) == totals["packets_sent"]
    assert totals["final_live_hosts"] == result.samples[-1]["live_hosts"]
    assert result.summary["delivery_rate"] is not None
    assert 0.0 <= result.summary["delivery_rate"] <= 1.0


def test_fault_log_records_cut_and_restore():
    result = run_scenario(_small_scenario())
    kinds = [record["kind"] for record in result.fault_log]
    assert kinds.count("link_cut") == 1
    assert kinds.count("link_restore") == 1
    cut = next(r for r in result.fault_log if r["kind"] == "link_cut")
    restore = next(r for r in result.fault_log if r["kind"] == "link_restore")
    assert cut["at"] == 10.0 and restore["at"] == 15.0
    assert sorted(map(tuple, cut["links"])) == \
        sorted(map(tuple, restore["links"]))
    assert result.totals["faults_fired"] == 2


def test_departures_shrink_membership():
    scenario = _small_scenario(
        duration=15.0, sample_interval=15.0,
        phases=[Phase(name="blip", start=0.0, end=15.0,
                      churn=ChurnSpec(arrival_rate=2.0,
                                      lifetime={"kind": "fixed",
                                                "value": 1.0}))],
        faults=[])
    result = run_scenario(scenario)
    assert result.totals["departures"] > 0
    # Fixed 1-unit lifetimes: nearly everyone who joined has departed.
    assert result.totals["final_live_hosts"] <= \
        result.totals["warmup_hosts"] + 3


def test_crash_departure_mode():
    scenario = _small_scenario(
        duration=10.0, sample_interval=10.0,
        phases=[Phase(name="crashy", start=0.0, end=10.0,
                      churn=ChurnSpec(arrival_rate=2.0,
                                      lifetime={"kind": "fixed",
                                                "value": 2.0},
                                      departure="fail"))],
        faults=[])
    result = run_scenario(scenario)
    assert result.totals["departures"] > 0


def test_interdomain_scenario_runs():
    scenario = builtin_scenario("depeering", seed=0)
    scenario.duration = 20.0
    scenario.warmup_hosts = 40
    scenario.faults = [FaultSpec(kind="as_depeer", at=10.0,
                                 params={"stub_only": True})]
    result = run_scenario(scenario)
    assert result.totals["joins"] > 0
    depeer = next(r for r in result.fault_log if r["kind"] == "as_depeer")
    assert depeer["asn"] is not None
    assert result.summary["delivery_rate"] is not None


def test_interdomain_departure_rejected_at_validation():
    scenario = builtin_scenario("depeering")
    scenario.phases[0].churn.lifetime = {"kind": "fixed", "value": 1.0}
    with pytest.raises(ScenarioError):
        WorkloadDriver(scenario)


def test_rng_streams_are_cached_and_scoped():
    driver = WorkloadDriver(_small_scenario())
    assert driver.rng("a") is driver.rng("a")
    assert driver.rng("a") is not driver.rng("b")


def test_builtin_steady_churn_acceptance():
    """The ISSUE acceptance scenario: builtin churn runs end-to-end and
    two same-seed runs agree byte-for-byte."""
    a = run_scenario(builtin_scenario("steady-churn", seed=0))
    b = run_scenario(builtin_scenario("steady-churn", seed=0))
    assert a.deterministic_view() == b.deterministic_view()
    assert a.totals["joins"] > 50
    assert a.summary["delivery_rate"] > 0.9
    assert any(r["kind"] == "link_cut" for r in a.fault_log)


def test_metrics_stream_is_deterministic_across_replays(tmp_path):
    import json

    def run(tag):
        path = tmp_path / "metrics-{}.jsonl".format(tag)
        result = run_scenario(_small_scenario(seed=5),
                              metrics_out=str(path), metrics_window=5.0)
        return path.read_bytes(), result

    first_bytes, first = run("a")
    second_bytes, _ = run("b")
    # Same seed -> byte-identical metrics JSONL (wall clock excluded).
    assert first_bytes and first_bytes == second_bytes
    assert first.totals["metrics_windows"] > 0
    rows = [json.loads(line) for line in first_bytes.decode().splitlines()]
    assert len(rows) == first.totals["metrics_windows"]
    assert [row["window"] for row in rows] == list(range(len(rows)))
    # Virtual-time stamps, scenario source, and the live-host gauge.
    assert all(row["t"] <= 20.0 for row in rows)
    assert all(row["source"] == "test-small" for row in rows)
    assert all("live_hosts" in row for row in rows)
    # Deterministic mode: timer rows carry call deltas only, never
    # wall-clock seconds.
    for row in rows:
        for timer in row["timers"].values():
            assert set(timer) == {"calls"}


def test_metrics_window_defaults_to_sample_interval(tmp_path):
    path = tmp_path / "metrics.jsonl"
    result = run_scenario(_small_scenario(seed=1), metrics_out=str(path))
    assert result.totals["metrics_windows"] == len(result.samples)


def test_no_metrics_out_means_no_windows():
    result = run_scenario(_small_scenario(seed=0))
    assert result.totals["metrics_windows"] == 0
