"""LRU pointer cache tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.idspace.identifier import RingSpace
from repro.intra.pointercache import PointerCache
from repro.intra.virtualnode import Pointer

SPACE = RingSpace(bits=16)


def ptr(value, path=("r0", "r1")):
    return Pointer(SPACE.make(value), tuple(path), "cache")


class TestLru:
    def test_put_get(self):
        cache = PointerCache(SPACE, capacity=4)
        cache.put(ptr(5))
        assert cache.get(SPACE.make(5)).dest_id.value == 5
        assert SPACE.make(5) in cache

    def test_eviction_order_is_lru(self):
        cache = PointerCache(SPACE, capacity=2)
        cache.put(ptr(1))
        cache.put(ptr(2))
        cache.get(SPACE.make(1))  # touch 1 → 2 becomes LRU
        cache.put(ptr(3))
        assert SPACE.make(1) in cache
        assert SPACE.make(2) not in cache
        assert cache.evictions == 1

    def test_best_match_touches_recency(self):
        cache = PointerCache(SPACE, capacity=2)
        cache.put(ptr(10))
        cache.put(ptr(20))
        cache.best_match(SPACE.make(11))  # hits 10
        cache.put(ptr(30))
        assert SPACE.make(10) in cache and SPACE.make(20) not in cache

    def test_zero_capacity_stores_nothing(self):
        cache = PointerCache(SPACE, capacity=0)
        cache.put(ptr(1))
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PointerCache(SPACE, capacity=-1)

    def test_reinsert_updates_value(self):
        cache = PointerCache(SPACE, capacity=2)
        cache.put(ptr(1, path=("a", "b")))
        cache.put(ptr(1, path=("a", "c")))
        assert len(cache) == 1
        assert cache.get(SPACE.make(1)).path == ("a", "c")


class TestMatching:
    def test_best_match_closest_not_past(self):
        cache = PointerCache(SPACE, capacity=8)
        for v in (10, 50, 90):
            cache.put(ptr(v))
        assert cache.best_match(SPACE.make(60)).dest_id.value == 50
        assert cache.best_match(SPACE.make(50)).dest_id.value == 50
        # Wrapping: nothing ≤ 5, so 90 is the closest from behind.
        assert cache.best_match(SPACE.make(5)).dest_id.value == 90

    def test_hit_miss_accounting(self):
        cache = PointerCache(SPACE, capacity=8)
        assert cache.best_match(SPACE.make(1)) is None
        cache.put(ptr(1))
        cache.best_match(SPACE.make(2))
        assert cache.misses == 1 and cache.hits == 1
        assert 0 < cache.hit_rate < 1


class TestInvalidation:
    def test_invalidate_id(self):
        cache = PointerCache(SPACE, capacity=4)
        cache.put(ptr(7))
        assert cache.invalidate_id(SPACE.make(7))
        assert not cache.invalidate_id(SPACE.make(7))
        assert cache.best_match(SPACE.make(8)) is None

    def test_invalidate_where_path_predicate(self):
        cache = PointerCache(SPACE, capacity=8)
        cache.put(ptr(1, path=("a", "x", "b")))
        cache.put(ptr(2, path=("a", "b")))
        dropped = cache.invalidate_where(lambda p: p.traverses("x"))
        assert dropped == 1
        assert SPACE.make(2) in cache and SPACE.make(1) not in cache

    def test_replace_reroutes_in_place(self):
        cache = PointerCache(SPACE, capacity=4)
        cache.put(ptr(3, path=("a", "dead", "b")))
        cache.replace(ptr(3, path=("a", "c", "b")))
        assert cache.get(SPACE.make(3)).path == ("a", "c", "b")

    def test_replace_ignores_absent(self):
        cache = PointerCache(SPACE, capacity=4)
        cache.replace(ptr(9))
        assert len(cache) == 0

    def test_clear(self):
        cache = PointerCache(SPACE, capacity=4)
        cache.put(ptr(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.best_match(SPACE.make(2)) is None


@given(st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1),
                min_size=1, max_size=50),
       st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_best_match_matches_brute_force(values, probe_v):
    cache = PointerCache(SPACE, capacity=len(values))
    for v in values:
        cache.put(ptr(v))
    probe = SPACE.make(probe_v)
    got = cache.best_match(probe)
    expected = min(set(values),
                   key=lambda v: SPACE.distance_cw(SPACE.make(v), probe))
    assert got.dest_id.value == expected or \
        SPACE.distance_cw(got.dest_id, probe) == \
        SPACE.distance_cw(SPACE.make(expected), probe)


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=100))
def test_capacity_never_exceeded(values):
    cache = PointerCache(SPACE, capacity=10)
    for v in values:
        cache.put(ptr(v))
    assert len(cache) <= 10
