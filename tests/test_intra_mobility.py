"""Mobility and graceful departure (the architecture's headline feature)."""

import random

import pytest

from repro.intra import mobility


class TestGracefulLeave:
    def test_ring_heals_after_leave(self, intra_net_factory):
        net = intra_net_factory(n_hosts=50, seed=20)
        rng = random.Random(0)
        for _ in range(20):
            net.leave_host(rng.choice(sorted(net.hosts)))
            net.check_ring()

    def test_leave_cheaper_than_failure(self, intra_net_factory):
        net_a = intra_net_factory(n_hosts=120, seed=21)
        net_b = intra_net_factory(n_hosts=120, seed=21)
        rng_a, rng_b = random.Random(1), random.Random(1)
        leaves = [net_a.leave_host(rng_a.choice(sorted(net_a.hosts)))
                  for _ in range(40)]
        fails = [net_b.fail_host(rng_b.choice(sorted(net_b.hosts)))
                 for _ in range(40)]
        assert sum(leaves) < sum(fails)

    def test_left_host_unreachable(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30, seed=22)
        victim = sorted(net.hosts)[3]
        dead_id = net.hosts[victim].id
        net.leave_host(victim)
        result = net.send_to_id(net.topology.routers[0], dead_id)
        assert not result.delivered
        net.check_ring()

    def test_leave_unknown_host(self, intra_net_factory):
        net = intra_net_factory(n_hosts=5)
        with pytest.raises(KeyError):
            net.leave_host("ghost")

    def test_ephemeral_leave(self, intra_net_factory):
        net = intra_net_factory(n_hosts=40, seed=9, ephemeral_fraction=0.3)
        eph = next(n for n, vn in net.hosts.items() if vn.ephemeral)
        cost = net.leave_host(eph)
        assert cost >= 0
        net.check_ring()


class TestMove:
    def test_identity_survives_move(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, seed=23)
        mover = sorted(net.hosts)[5]
        old_id = net.hosts[mover].id
        old_router = net.hosts[mover].router
        target = next(r for r in net.topology.edge_routers()
                      if r != old_router)
        receipt = net.move_host(mover, target)
        assert receipt.flat_id == old_id
        assert net.hosts[mover].id == old_id
        assert net.hosts[mover].router == target
        net.check_ring()

    def test_correspondent_still_reaches_mover(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, seed=24)
        mover, peer = sorted(net.hosts)[0], sorted(net.hosts)[1]
        for target in net.topology.edge_routers()[::11][:3]:
            if target == net.hosts[mover].router:
                continue
            net.move_host(mover, target)
            result = net.send(peer, mover)
            assert result.delivered
            assert result.path[-1] == target

    def test_move_cost_comparable_to_join(self, intra_net_factory):
        """§6.2: mobility overhead comparable to join overhead."""
        net = intra_net_factory(n_hosts=150, seed=25)
        join_avg = sum(net.stats.operation_costs("join")) / 150
        rng = random.Random(2)
        totals = []
        for _ in range(25):
            mover = rng.choice(sorted(net.hosts))
            target = rng.choice(net.topology.edge_routers())
            if target == net.hosts[mover].router:
                continue
            totals.append(net.move_host(mover, target).total_messages)
        assert totals
        assert sum(totals) / len(totals) < 4 * join_avg

    def test_move_to_down_router_rejected(self, intra_net_factory):
        net = intra_net_factory(n_hosts=20, seed=26)
        victim_router = net.topology.routers[0]
        net.lsmap.fail_router(victim_router)
        mover = next(n for n, vn in net.hosts.items()
                     if vn.router != victim_router)
        with pytest.raises(ValueError):
            net.move_host(mover, victim_router)


class TestParking:
    def test_park_and_unpark_are_free(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30, seed=27)
        host = sorted(net.hosts)[2]
        before = net.stats.total_messages()
        vn = mobility.park_host(net, host)
        assert vn.host_name.startswith("(parked):")
        mobility.unpark_host(net, host)
        assert net.hosts[host].host_name == host
        assert net.stats.total_messages() == before
        net.check_ring()

    def test_parked_vn_still_serves_the_ring(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30, seed=28)
        host = sorted(net.hosts)[2]
        mobility.park_host(net, host)
        for _ in range(20):
            a, b = net.random_host_pair()
            assert net.send(a, b).delivered

    def test_unpark_requires_parked(self, intra_net_factory):
        net = intra_net_factory(n_hosts=10, seed=29)
        with pytest.raises(KeyError):
            mobility.unpark_host(net, sorted(net.hosts)[0])
