"""Property-based tests for repro.util.rng (hypothesis).

The determinism contract the whole harness leans on: ``derive_rng`` must
give every ``(seed, *scope)`` consumer its own stream, stable across
processes, and introducing a *new* consumer must never perturb the draws
an existing consumer sees.  ``zipf_weights`` must always be a normalised,
monotonically non-increasing distribution.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import derive_rng, stable_hash, zipf_weights

scope_parts = st.lists(
    st.one_of(st.integers(-2**31, 2**31), st.text(max_size=12)),
    max_size=3)
seeds = st.integers(0, 2**31)


@given(seed=seeds, scope=scope_parts)
@settings(max_examples=50)
def test_derive_rng_is_reproducible(seed, scope):
    a = derive_rng(seed, *scope)
    b = derive_rng(seed, *scope)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


@given(seed=seeds, scope=scope_parts, extra=st.text(min_size=1, max_size=12))
@settings(max_examples=50)
def test_new_consumer_never_perturbs_existing_stream(seed, scope, extra):
    """Drawing from a newly-derived scope must not change what an
    existing scope's stream produces — the no-shared-global-state law."""
    before = [derive_rng(seed, *scope).random() for _ in range(3)]
    intruder = derive_rng(seed, *scope, "new-consumer", extra)
    intruder.random()
    after = [derive_rng(seed, *scope).random() for _ in range(3)]
    assert before == after


@given(seed=seeds, scope=scope_parts.filter(lambda s: s != []))
@settings(max_examples=50)
def test_distinct_scopes_give_distinct_streams(seed, scope):
    base = derive_rng(seed)
    scoped = derive_rng(seed, *scope)
    # SHA-256 collisions aside, differently-scoped streams differ.
    assert [base.random() for _ in range(4)] != \
           [scoped.random() for _ in range(4)]


@given(seed=seeds, scope=scope_parts)
@settings(max_examples=50)
def test_stable_hash_matches_known_derivation(seed, scope):
    assert derive_rng(seed, *scope).random() == \
           __import__("random").Random(stable_hash(seed, *scope)).random()


@given(n=st.integers(1, 500),
       exponent=st.floats(0.0, 4.0, allow_nan=False))
@settings(max_examples=100)
def test_zipf_weights_normalised(n, exponent):
    w = zipf_weights(n, exponent)
    assert len(w) == n
    assert math.isclose(sum(w), 1.0, rel_tol=1e-9)
    assert all(x > 0 for x in w)


@given(n=st.integers(1, 500),
       exponent=st.floats(0.0, 4.0, allow_nan=False))
@settings(max_examples=100)
def test_zipf_weights_monotone_non_increasing(n, exponent):
    w = zipf_weights(n, exponent)
    assert all(x >= y for x, y in zip(w, w[1:]))
    # Tiny exponents are uniform to float precision; only demand a
    # strictly heavier head once the skew is resolvable.
    if exponent >= 1e-3 and n > 1:
        assert w[0] > w[-1]
