"""Multicast service tests (Section 5.2): path-painting trees."""

import pytest

from repro.services.multicast import MulticastGroup


@pytest.fixture()
def net(intra_net_factory):
    return intra_net_factory(n_hosts=40, seed=5)


def members_at(net, count, start=0, step=2):
    return net.topology.edge_routers()[start:start + count * step:step]


def test_every_member_receives_exactly_once(net):
    group = MulticastGroup(net, "video")
    for i, router in enumerate(members_at(net, 8)):
        group.join("m{}".format(i), router)
    report = group.multicast("m0")
    assert report.receivers == {"m{}".format(i) for i in range(8)}


def test_delivery_from_any_member(net):
    group = MulticastGroup(net, "video")
    for i, router in enumerate(members_at(net, 6)):
        group.join("m{}".format(i), router)
    for i in range(6):
        report = group.multicast("m{}".format(i))
        assert len(report.receivers) == 6


def test_tree_is_acyclic_connected(net):
    group = MulticastGroup(net, "tree")
    for i, router in enumerate(members_at(net, 7)):
        group.join("m{}".format(i), router)
    n_nodes = len(set(group.tree_links) | set(group.local_members))
    # A tree has exactly n-1 edges.
    assert group.tree_edge_count() == n_nodes - 1


def test_messages_equal_tree_edges_reached(net):
    group = MulticastGroup(net, "msgs")
    for i, router in enumerate(members_at(net, 6)):
        group.join("m{}".format(i), router)
    report = group.multicast("m0")
    assert report.messages == group.tree_edge_count()


def test_duplicate_member_rejected(net):
    group = MulticastGroup(net, "dup")
    group.join("m0", net.topology.edge_routers()[0])
    with pytest.raises(ValueError):
        group.join("m0", net.topology.edge_routers()[1])


def test_join_cost_charged(net):
    group = MulticastGroup(net, "cost")
    routers = members_at(net, 3)
    group.join("m0", routers[0])
    cost = group.join("m1", routers[1])
    assert cost > 0
    assert net.stats.total_messages("multicast-join") >= cost


def test_co_located_members(net):
    group = MulticastGroup(net, "colo")
    router = net.topology.edge_routers()[0]
    group.join("m0", router)
    group.join("m1", router)  # same router: no painting needed
    report = group.multicast("m0")
    assert report.receivers == {"m0", "m1"}
    assert report.messages == 0


def test_leave_prunes_leaf_branches(net):
    group = MulticastGroup(net, "prune")
    routers = members_at(net, 4)
    for i, router in enumerate(routers):
        group.join("m{}".format(i), router)
    edges_before = group.tree_edge_count()
    group.leave("m3")
    assert group.tree_edge_count() <= edges_before
    report = group.multicast("m0")
    assert report.receivers == {"m0", "m1", "m2"}


def test_leave_unknown_member(net):
    group = MulticastGroup(net, "x")
    with pytest.raises(KeyError):
        group.leave("ghost")


def test_multicast_from_unknown_member(net):
    group = MulticastGroup(net, "x")
    with pytest.raises(KeyError):
        group.multicast("ghost")
