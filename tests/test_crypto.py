"""Self-certifying identity tests: only the key holder can join its ID."""

import pytest

from repro.idspace.crypto import (KeyPair, OwnershipProof, SignatureAuthority,
                                  SpoofedIdentityError, authenticate)
from repro.idspace.identifier import FlatId


@pytest.fixture()
def authority():
    return SignatureAuthority()


def test_id_is_hash_of_public_key(authority):
    kp = KeyPair.generate(b"alice", authority)
    assert kp.flat_id == FlatId.from_bytes(kp.public_key)


def test_generation_is_deterministic(authority):
    a = KeyPair.generate(b"alice", authority)
    b = KeyPair.generate(b"alice", authority)
    assert a.public_key == b.public_key
    assert a.flat_id == b.flat_id


def test_distinct_seeds_give_distinct_ids(authority):
    ids = {KeyPair.generate(str(i).encode(), authority).flat_id
           for i in range(50)}
    assert len(ids) == 50


def test_valid_proof_authenticates(authority):
    kp = KeyPair.generate(b"alice", authority)
    proof = kp.prove_ownership(b"challenge-1")
    assert authenticate(proof, authority) == kp.flat_id


def test_claimed_id_must_match_public_key(authority):
    alice = KeyPair.generate(b"alice", authority)
    mallory = KeyPair.generate(b"mallory", authority)
    proof = mallory.prove_ownership(b"c")
    forged = OwnershipProof(claimed_id=alice.flat_id,
                            public_key=mallory.public_key,
                            challenge=proof.challenge,
                            signature=proof.signature)
    with pytest.raises(SpoofedIdentityError):
        authenticate(forged, authority)


def test_signature_must_match_challenge(authority):
    kp = KeyPair.generate(b"alice", authority)
    proof = kp.prove_ownership(b"challenge-1")
    replayed = OwnershipProof(claimed_id=proof.claimed_id,
                              public_key=proof.public_key,
                              challenge=b"challenge-2",
                              signature=proof.signature)
    with pytest.raises(SpoofedIdentityError):
        authenticate(replayed, authority)


def test_attacker_without_private_key_cannot_sign(authority):
    """An attacker holding only the public key cannot mint a proof."""
    alice = KeyPair.generate(b"alice", authority)
    fake_sig = b"\x00" * 32
    forged = OwnershipProof(claimed_id=alice.flat_id,
                            public_key=alice.public_key,
                            challenge=b"c", signature=fake_sig)
    with pytest.raises(SpoofedIdentityError):
        authenticate(forged, authority)


def test_unknown_public_key_fails_verification(authority):
    other_authority = SignatureAuthority()
    kp = KeyPair.generate(b"alice", other_authority)
    proof = kp.prove_ownership(b"c")
    with pytest.raises(SpoofedIdentityError):
        authenticate(proof, authority)  # key never registered here


def test_signature_verify_round_trip(authority):
    kp = KeyPair.generate(b"alice", authority)
    sig = kp.sign(b"message")
    assert authority.verify(kp.public_key, b"message", sig)
    assert not authority.verify(kp.public_key, b"other", sig)


def test_authority_rejects_colliding_registration(authority):
    authority.register(b"pub", b"priv-a")
    authority.register(b"pub", b"priv-a")  # idempotent re-register is fine
    with pytest.raises(ValueError):
        authority.register(b"pub", b"priv-b")
