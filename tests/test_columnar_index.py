"""ColumnarRingIndex: the flat-array candidate index behind the hot path.

The contract under test is *observational equivalence* with
:class:`SortedRingMap` — every circular query must answer identically
under any interleaving of mutations and lookups, on every key-column
backend — plus the dict-immediate / column-deferred staging semantics
the epoch flush relies on.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idspace.identifier import RingSpace
from repro.util.ringmap import (ColumnarRingIndex, NUMPY_FLAG_ENV,
                                SortedRingMap, _pick_backend)

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_NUMPY = False

SPACE = RingSpace(bits=16)
WIDE_SPACE = RingSpace(bits=128)
MAX16 = (1 << 16) - 1

BACKENDS = ["list", "array"] + (["numpy"] if HAVE_NUMPY else [])


class TestBackendSelection:
    def test_wide_space_falls_back_to_list(self):
        assert ColumnarRingIndex(WIDE_SPACE).backend == "list"

    def test_narrow_space_uses_flat_array(self):
        assert ColumnarRingIndex(SPACE).backend == "array"

    def test_explicit_wide_array_rejected(self):
        with pytest.raises(ValueError):
            ColumnarRingIndex(WIDE_SPACE, backend="array")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ColumnarRingIndex(SPACE, backend="btree")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_numpy_behind_feature_flag(self, monkeypatch):
        monkeypatch.delenv(NUMPY_FLAG_ENV, raising=False)
        assert _pick_backend(SPACE, None) == "array"
        monkeypatch.setenv(NUMPY_FLAG_ENV, "1")
        assert _pick_backend(SPACE, None) == "numpy"
        assert _pick_backend(WIDE_SPACE, None) == "list"  # too wide
        monkeypatch.setenv(NUMPY_FLAG_ENV, "0")
        assert _pick_backend(SPACE, None) == "array"


class TestStagingSemantics:
    def test_reads_never_stale_while_pending(self):
        index = ColumnarRingIndex(SPACE)
        index.set(10, "a")
        assert index.pending() == 1
        assert index.get(10) == "a" and 10 in index and len(index) == 1
        index.delete(10)
        assert index.get(10) is None and 10 not in index and len(index) == 0

    def test_add_then_delete_cancels_staging(self):
        index = ColumnarRingIndex(SPACE)
        index.set(10, "a")
        index.delete(10)
        assert index.pending() == 0
        assert index.successor_value(0) is None

    def test_delete_then_reinsert_within_one_epoch(self):
        index = ColumnarRingIndex(SPACE)
        index.set(10, "a")
        index.key_values()  # sync
        index.delete(10)
        index.set(10, "b")
        keys, vals = index.columns()
        assert list(keys) == [10] and vals == ["b"]

    def test_replace_patches_synced_column(self):
        index = ColumnarRingIndex(SPACE)
        index.set(10, "a")
        index.set(20, "b")
        index.columns()  # sync
        index.set(10, "a2")
        keys, vals = index.columns()
        assert vals[list(keys).index(10)] == "a2"

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            ColumnarRingIndex(SPACE).delete(10)

    def test_storm_and_incremental_sync_agree(self):
        # Small batch → per-key insert path; big batch → sort rebuild.
        incremental = ColumnarRingIndex(SPACE)
        storm = ColumnarRingIndex(SPACE)
        values = list(range(0, 4000, 7))
        for v in values:
            storm.set(v, v)
        for v in values:
            incremental.set(v, v)
            incremental.key_values()  # sync after every key
        assert list(storm.key_values()) == list(incremental.key_values())
        assert storm.columns()[1] == incremental.columns()[1]


ops_strategy = st.lists(
    st.tuples(st.sampled_from(["set", "del", "sync"]),
              st.integers(min_value=0, max_value=MAX16)),
    max_size=60)
probes_strategy = st.lists(st.integers(min_value=0, max_value=MAX16),
                           min_size=1, max_size=8)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy, probes=probes_strategy)
def test_equivalent_to_sorted_ring_map(backend, ops, probes):
    """Any mutation/lookup interleaving answers exactly like SortedRingMap."""
    reference = SortedRingMap(SPACE)
    index = ColumnarRingIndex(SPACE, backend=backend)
    for op, v in ops:
        if op == "set":
            reference.insert(SPACE.make(v), "p{}".format(v))
            index.set(v, "p{}".format(v))
        elif op == "del":
            reference.discard(v)
            index.discard(v)
        else:
            # Interleaved query: forces a column sync mid-stream so both
            # the incremental and the rebuild paths get exercised.
            expected = reference.successor(v)
            got = index.successor_value(v)
            assert got == (expected.value if expected is not None else None)

    assert len(index) == len(reference)
    assert list(index.key_values()) == list(reference.key_values())
    assert index.columns()[1] == [reference[v] for v in reference.key_values()]

    def val(key):
        return key.value if key is not None else None

    for probe in probes:
        assert (probe in index) == (probe in reference)
        assert index.get(probe) == reference.get(probe)
        for strict in (True, False):
            assert index.successor_value(probe, strict=strict) == \
                val(reference.successor(probe, strict=strict))
            assert index.predecessor_value(probe, strict=strict) == \
                val(reference.predecessor(probe, strict=strict))
        assert list(index.iter_predecessor_values(probe)) == \
            list(reference.iter_predecessor_values(probe))
    for current, dest in zip(probes, reversed(probes)):
        assert index.closest_not_past_value(current, dest) == \
            reference.closest_not_past_value(current, dest)
    low, high = probes[0], probes[-1]
    assert index.in_arc_values(low, high) == \
        [key.value for key in reference.in_arc(low, high)]


@pytest.mark.parametrize("backend", BACKENDS)
def test_wrapping_queries_match_reference(backend):
    reference = SortedRingMap(SPACE)
    index = ColumnarRingIndex(SPACE, backend=backend)
    for v in (10, 20, 30, 60000):
        reference.insert(SPACE.make(v), v)
        index.set(v, v)
    assert index.successor_value(60000) == 10
    assert index.predecessor_value(10) == 60000
    assert index.in_arc_values(50000, 15) == [60000, 10]
    assert index.closest_not_past_value(0, 25) == 20
    assert index.closest_not_past_value(20, 25) is None


def test_steady_churn_replay_byte_for_byte():
    """Same-seed steady-churn runs must serialise to identical bytes —
    the columnar index may not perturb any tie-break or RNG draw."""
    from repro.workload import builtin_scenario, run_scenario

    a = run_scenario(builtin_scenario("steady-churn", seed=1))
    b = run_scenario(builtin_scenario("steady-churn", seed=1))
    dump_a = json.dumps(a.deterministic_view(), sort_keys=True)
    dump_b = json.dumps(b.deterministic_view(), sort_keys=True)
    assert dump_a == dump_b


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_numpy_backend_via_env_flag_end_to_end(monkeypatch):
    monkeypatch.setenv(NUMPY_FLAG_ENV, "1")
    index = ColumnarRingIndex(SPACE)
    assert index.backend == "numpy"
    for v in (10, 20, 30):
        index.set(v, "p{}".format(v))
    assert index.successor_value(15) == 20
    index.delete(20)
    assert index.successor_value(15) == 30
    assert os.environ[NUMPY_FLAG_ENV] == "1"
