"""Property-style (seeded random) tests for the circular-namespace core.

Covers the invariants the hot-path optimizations rely on:

* ``distance_cw`` anti-symmetry and the Chord interval conventions at
  wrap-around and degenerate (``a == b``) inputs;
* every int-domain fast path (``*_i`` on :class:`RingSpace`) agrees with
  its FlatId original on random inputs;
* the linear-scan ``RingSpace.closest_not_past`` and the bisect-based
  ``SortedRingMap.closest_not_past`` / ``closest_not_past_value`` answer
  identically on randomized candidate sets;
* the routers' incremental candidate indexes agree with the brute-force
  reference scans under join/failure churn.

No external property-testing dependency is used — plain ``random`` with
fixed seeds keeps the suite deterministic.
"""

import random

import pytest

from repro.idspace.identifier import RingSpace
from repro.util.ringmap import SortedRingMap

BITS = 16  # small namespace → wrap-around cases are common, not rare
SPACE = RingSpace(bits=BITS)
SIZE = SPACE.size


def rand_ids(rng, n):
    return [SPACE.make(rng.randrange(SIZE)) for _ in range(n)]


# ---------------------------------------------------------------------------
# distance / interval conventions
# ---------------------------------------------------------------------------

def test_distance_cw_antisymmetry():
    rng = random.Random(0xD157)
    for _ in range(500):
        a, b = rand_ids(rng, 2)
        d_ab = SPACE.distance_cw(a, b)
        d_ba = SPACE.distance_cw(b, a)
        if a == b:
            assert d_ab == d_ba == 0
        else:
            # Going the other way around closes the circle.
            assert d_ab + d_ba == SIZE
        assert 0 <= d_ab < SIZE


def test_distance_cw_triangle_identity():
    rng = random.Random(0xD158)
    for _ in range(500):
        a, b, c = rand_ids(rng, 3)
        # Clockwise distances compose modulo the ring size.
        assert (SPACE.distance_cw(a, b) + SPACE.distance_cw(b, c)) % SIZE \
            == SPACE.distance_cw(a, c)


def test_interval_oc_convention():
    rng = random.Random(0x0C)
    for _ in range(500):
        x, a, b = rand_ids(rng, 3)
        inside = SPACE.in_interval_oc(x, a, b)
        if a == b:
            # Degenerate (a, a] is the full ring (single-node ring).
            assert inside
        else:
            da_x = SPACE.distance_cw(a, x)
            da_b = SPACE.distance_cw(a, b)
            assert inside == (0 < da_x <= da_b)
    # Explicit wrap-around: the interval crossing zero.
    a, b = SPACE.make(SIZE - 4), SPACE.make(3)
    assert SPACE.in_interval_oc(SPACE.make(0), a, b)
    assert SPACE.in_interval_oc(SPACE.make(3), a, b)          # closed end
    assert not SPACE.in_interval_oc(a, a, b)                  # open start
    assert not SPACE.in_interval_oc(SPACE.make(4), a, b)


def test_interval_oo_convention():
    rng = random.Random(0x00)
    for _ in range(500):
        x, a, b = rand_ids(rng, 3)
        inside = SPACE.in_interval_oo(x, a, b)
        if a == b:
            # Degenerate (a, a) is everything except a itself.
            assert inside == (x != a)
        else:
            da_x = SPACE.distance_cw(a, x)
            da_b = SPACE.distance_cw(a, b)
            assert inside == (0 < da_x < da_b)
    a, b = SPACE.make(SIZE - 4), SPACE.make(3)
    assert SPACE.in_interval_oo(SPACE.make(0), a, b)
    assert not SPACE.in_interval_oo(SPACE.make(3), a, b)      # open end
    assert not SPACE.in_interval_oo(a, a, b)


# ---------------------------------------------------------------------------
# int fast paths ≡ FlatId originals
# ---------------------------------------------------------------------------

def test_int_fast_paths_match_flatid_originals():
    rng = random.Random(0x1D5)
    for _ in range(500):
        x, a, b, c = rand_ids(rng, 4)
        assert SPACE.distance_cw_i(a.value, b.value) == SPACE.distance_cw(a, b)
        assert SPACE.in_interval_oc_i(x.value, a.value, b.value) \
            == SPACE.in_interval_oc(x, a, b)
        assert SPACE.in_interval_oo_i(x.value, a.value, b.value) \
            == SPACE.in_interval_oo(x, a, b)
        assert SPACE.progress_i(a.value, b.value, c.value) \
            == SPACE.progress(a, b, c)


def test_closest_not_past_int_matches_flatid():
    rng = random.Random(0xC10)
    for _ in range(200):
        current, dest = rand_ids(rng, 2)
        cands = rand_ids(rng, rng.randrange(0, 12))
        expect = SPACE.closest_not_past(current, dest, cands)
        got = SPACE.closest_not_past_i(current.value, dest.value,
                                       [c.value for c in cands])
        assert got == (None if expect is None else expect.value)


# ---------------------------------------------------------------------------
# linear scan vs bisect (satellite: greedy-hop dedup cross-check)
# ---------------------------------------------------------------------------

def test_linear_scan_vs_ringmap_bisect():
    rng = random.Random(0xB15EC7)
    for trial in range(100):
        n = rng.randrange(1, 40)
        keys = list({SPACE.make(rng.randrange(SIZE)) for _ in range(n)})
        ring = SortedRingMap(SPACE)
        for key in keys:
            ring.insert(key, str(key.value))
        for _ in range(20):
            current, dest = rand_ids(rng, 2)
            linear = SPACE.closest_not_past(current, dest, keys)
            bisected = ring.closest_not_past(current, dest)
            assert linear == bisected, (trial, current.value, dest.value)
            int_domain = ring.closest_not_past_value(current.value, dest.value)
            assert int_domain == (None if linear is None else linear.value)


def test_ringmap_queries_accept_ints_and_flatids():
    rng = random.Random(0xACCE)
    ring = SortedRingMap(SPACE)
    keys = rand_ids(rng, 20)
    for key in keys:
        ring.insert(key, key.value)
    probe = rand_ids(rng, 50)
    for p in probe:
        assert ring.successor(p) == ring.successor(p.value)
        assert ring.predecessor(p) == ring.predecessor(p.value)
        assert (p in ring) == (p.value in ring)


def test_ringmap_keys_view_is_readonly_and_live():
    ring = SortedRingMap(SPACE)
    view = ring.keys()
    assert len(view) == 0
    ring.insert(SPACE.make(5))
    ring.insert(SPACE.make(1))
    assert len(view) == 2                       # live view
    assert [k.value for k in view] == [1, 5]    # sorted
    assert view[0].value == 1
    assert [k.value for k in view[1:]] == [5]   # slices stay views
    with pytest.raises((TypeError, AttributeError)):
        view[0] = SPACE.make(9)
    with pytest.raises(AttributeError):
        view.append(SPACE.make(9))


# ---------------------------------------------------------------------------
# incremental router indexes ≡ reference scans under churn
# ---------------------------------------------------------------------------

def _assert_matches(index_match, scan_match, dest):
    if scan_match is None:
        assert index_match is None, dest
        return
    assert index_match is not None, dest
    assert index_match.distance == scan_match.distance
    assert index_match.is_local == scan_match.is_local


def test_intra_incremental_index_matches_scan_under_churn():
    from repro.intra.network import IntraDomainNetwork
    from repro.topology.isp import synthetic_isp

    rng = random.Random(0x17A)
    topo = synthetic_isp(n_routers=30, seed=3)
    net = IntraDomainNetwork(topo, seed=3)
    net.join_random_hosts(80)

    def crosscheck():
        space = net.space
        for router in net.routers.values():
            for _ in range(5):
                dest = space.make(rng.randrange(space.size))
                for include_ephemeral in (True, False):
                    _assert_matches(
                        router.vn_best_match(dest, include_ephemeral),
                        router.vn_best_match_scan(dest, include_ephemeral),
                        dest.value)

    crosscheck()
    # Churn: host leaves, moves and failures dirty individual VNs.
    hosts = [h for h in net.hosts]
    rng.shuffle(hosts)
    net.leave_host(hosts[0])
    net.fail_host(hosts[1])
    some_router = net.routers[next(iter(net.routers))]
    crosscheck()
    assert some_router is not None


def test_inter_incremental_index_matches_bruteforce():
    from repro.inter.network import InterDomainNetwork
    from repro.topology.asgraph import synthetic_as_graph

    rng = random.Random(0x1E7)
    asg = synthetic_as_graph(n_ases=40, seed=2)
    net = InterDomainNetwork(asg, n_fingers=4, seed=2)
    net.join_random_hosts(60)

    def brute_best_key(node, dest):
        """Closest key (VN id or pointer target) to dest, by scan."""
        best_dist = None
        for vn in node.hosted.values():
            dists = [net.space.distance_cw(vn.id, dest)]
            for ptr in vn.candidate_pointers():
                dists.append(net.space.distance_cw(ptr.dest_id, dest))
            for dist in dists:
                if best_dist is None or dist < best_dist:
                    best_dist = dist
        return best_dist

    for node in net.ases.values():
        if not node.hosted:
            continue
        for _ in range(10):
            dest = net.space.make(rng.randrange(net.space.size))
            match = node.best_match(net, dest, use_cache=False)
            expect = brute_best_key(node, dest)
            assert match is not None
            assert match.distance == expect
