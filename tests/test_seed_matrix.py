"""Robustness matrix: the core invariants hold across seeds, sizes and
configurations — not just on the tuned fixtures."""

import pytest

from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.intra.network import IntraDomainNetwork
from repro.topology.asgraph import synthetic_as_graph
from repro.topology.isp import synthetic_isp


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
@pytest.mark.parametrize("n_routers", [24, 60])
def test_intra_invariants_across_seeds(seed, n_routers):
    topo = synthetic_isp(n_routers=n_routers, seed=seed)
    net = IntraDomainNetwork(topo, seed=seed)
    net.join_random_hosts(60)
    net.check_ring()
    for _ in range(20):
        a, b = net.random_host_pair()
        result = net.send(a, b)
        assert result.delivered
        if result.optimal_hops > 0:
            assert result.stretch >= 1.0 - 1e-9
        else:  # same-router delivery has no baseline: defined as 0.0
            assert result.stretch == 0.0
    # One failure + one partition cycle per configuration.
    net.fail_host(sorted(net.hosts)[0])
    net.check_ring()
    net.partition_pop(sorted(topo.pops)[0])
    net.check_ring()


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
@pytest.mark.parametrize("strategy", [JoinStrategy.MULTIHOMED,
                                      JoinStrategy.PEERING])
def test_inter_invariants_across_seeds(seed, strategy):
    asg = synthetic_as_graph(n_ases=50, seed=seed)
    net = InterDomainNetwork(asg, n_fingers=6, seed=seed, strategy=strategy)
    net.join_random_hosts(80)
    net.check_rings()
    assert net.lookup_mismatches == 0
    for _ in range(25):
        a, b = net.random_host_pair()
        result = net.send(a, b)
        assert result.delivered
        assert net.check_isolation(net.hosts[a].home_as,
                                   net.hosts[b].home_as, result.path)


@pytest.mark.parametrize("group_size", [1, 2, 8])
def test_intra_group_size_configs(group_size):
    topo = synthetic_isp(n_routers=30, seed=6)
    net = IntraDomainNetwork(topo, seed=6, successor_group_size=group_size)
    net.join_random_hosts(40)
    net.check_ring()
    for name in sorted(net.hosts)[:8]:
        net.fail_host(name)
        net.check_ring()


@pytest.mark.parametrize("cache_entries", [0, 7, 100_000])
def test_intra_cache_configs(cache_entries):
    topo = synthetic_isp(n_routers=30, seed=7)
    net = IntraDomainNetwork(topo, seed=7, cache_entries=cache_entries)
    net.join_random_hosts(40)
    for _ in range(20):
        a, b = net.random_host_pair()
        assert net.send(a, b).delivered
