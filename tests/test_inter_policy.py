"""Policy view: virtual ASes, join chains, valley-free paths, import rules."""

import pytest

from repro.inter.policy import JoinStrategy, PolicyView, VirtualAS
from repro.topology.asgraph import ASGraph


@pytest.fixture()
def small_internet():
    """Two tier-1s (peered), two tier-2s (peered), three stubs."""
    asg = ASGraph()
    asg.add_as("T1a", tier=1)
    asg.add_as("T1b", tier=1)
    asg.add_as("T2a", tier=2)
    asg.add_as("T2b", tier=2)
    asg.add_as("S1", tier=3, hosts=5)
    asg.add_as("S2", tier=3, hosts=5)
    asg.add_as("S3", tier=3, hosts=5)
    asg.add_peering("T1a", "T1b")
    asg.add_customer_provider("T2a", "T1a")
    asg.add_customer_provider("T2b", "T1b")
    asg.add_peering("T2a", "T2b")
    asg.add_customer_provider("S1", "T2a")
    asg.add_customer_provider("S2", "T2b")
    asg.add_customer_provider("S2", "T2a")      # multihomed
    asg.add_customer_provider("S3", "T2b", backup=False)
    return asg


@pytest.fixture()
def view(small_internet):
    return PolicyView(small_internet)


class TestVirtualAses:
    def test_tier1_clique_becomes_root(self, view):
        assert isinstance(view.root, VirtualAS)
        assert view.root.members == frozenset({"T1a", "T1b"})

    def test_peer_link_gets_virtual_as(self, view):
        assert VirtualAS(frozenset({"T2a", "T2b"})) in view.virtual_ases

    def test_root_subtree_is_everything(self, view, small_internet):
        assert view.subtree(view.root) == set(small_internet.ases())

    def test_virtual_as_subtree_union(self, view):
        vas = VirtualAS(frozenset({"T2a", "T2b"}))
        assert view.subtree(vas) == {"T2a", "T2b", "S1", "S2", "S3"}

    def test_virtual_as_needs_two_members(self):
        with pytest.raises(ValueError):
            VirtualAS(frozenset({"only"}))

    def test_level_containment(self, view):
        vas = VirtualAS(frozenset({"T2a", "T2b"}))
        assert view.level_contained_in("S1", "T2a")
        assert view.level_contained_in("T2a", view.root)
        assert view.level_contained_in(vas, view.root)
        assert not view.level_contained_in("T2a", "T2b")
        assert not view.level_contained_in(view.root, "T2a")


class TestJoinChains:
    def test_ephemeral_chain_is_home_plus_root(self, view):
        chain = view.join_chain("S1", JoinStrategy.EPHEMERAL)
        assert chain == ["S1", view.root]

    def test_single_homed_follows_one_path(self, view):
        chain = view.join_chain("S2", JoinStrategy.SINGLE_HOMED)
        assert chain[0] == "S2"
        # Only one of the two providers appears.
        assert ("T2a" in chain) != ("T2b" in chain)
        assert view.root in chain

    def test_single_homed_via_provider(self, view):
        chain = view.join_chain("S2", JoinStrategy.SINGLE_HOMED,
                                via_provider="T2b")
        assert "T2b" in chain and "T2a" not in chain
        with pytest.raises(ValueError):
            view.join_chain("S2", JoinStrategy.SINGLE_HOMED,
                            via_provider="T1a")

    def test_multihomed_covers_up_hierarchy(self, view):
        chain = view.join_chain("S2", JoinStrategy.MULTIHOMED)
        assert {"S2", "T2a", "T2b", "T1a", "T1b"} - set(chain) in (set(),)
        assert view.root in chain

    def test_peering_adds_adjacent_virtual_ases(self, view):
        chain = view.join_chain("S1", JoinStrategy.PEERING)
        assert VirtualAS(frozenset({"T2a", "T2b"})) in chain

    def test_chain_is_innermost_first(self, view):
        chain = view.join_chain("S1", JoinStrategy.PEERING)
        sizes = [len(view.subtree(lvl)) for lvl in chain]
        assert sizes == sorted(sizes)


class TestValleyFree:
    def test_step_types(self, view):
        assert view.step_type("S1", "T2a") == "up"
        assert view.step_type("T2a", "S1") == "down"
        assert view.step_type("T2a", "T2b") == "peer"
        assert view.step_type("S1", "S2") is None

    def test_route_validity(self, view):
        assert view.route_is_valley_free(("S1", "T2a", "T2b", "S2"))
        assert view.route_is_valley_free(("S1", "T2a", "T1a", "T1b", "T2b"))
        # Down then up is a valley.
        assert not view.route_is_valley_free(("T2a", "S1", "T2a"))
        # Two peer crossings are not allowed.
        assert not view.route_is_valley_free(
            ("S1", "T2a", "T2b", "T2a"))

    def test_policy_path_prefers_short_valid(self, view):
        path = view.policy_path("S1", "S2")
        assert path is not None
        assert view.route_is_valley_free(path)
        assert path[0] == "S1" and path[-1] == "S2"

    def test_scoped_path_stays_in_subtree(self, view):
        path = view.policy_path("S1", "S2", scope="T2a")
        assert path == ("S1", "T2a", "S2")
        # Scope T2b cannot reach S1.
        assert view.policy_path("S1", "S2", scope="T2b") is None

    def test_scoped_path_peer_links_only_in_virtual_as(self, view):
        vas = VirtualAS(frozenset({"T2a", "T2b"}))
        path = view.policy_path("S1", "S3", scope=vas)
        assert path is not None and view.route_is_valley_free(path)
        assert ("T2a", "T2b") in zip(path, path[1:])

    def test_same_as_path(self, view):
        assert view.policy_path("S1", "S1") == ("S1",)


class TestImportRule:
    def test_from_customer_anything_goes(self, view):
        assert view.shortcut_allowed("S1", "T2a", ("T2a", "T1a"))

    def test_from_peer_only_down(self, view):
        assert not view.shortcut_allowed("T2b", "T2a", ("T2a", "T1a"))
        assert view.shortcut_allowed("T2b", "T2a", ("T2a", "S1"))

    def test_from_provider_only_down(self, view):
        assert not view.shortcut_allowed("T1a", "T2a", ("T2a", "T2b", "S2"))
        assert view.shortcut_allowed("T1a", "T2a", ("T2a", "S1"))

    def test_fresh_packet_unrestricted(self, view):
        assert view.shortcut_allowed(None, "T2a", ("T2a", "T1a"))
