"""Bloom filter tests — ROFL's peering/isolation machinery relies on the
no-false-negative guarantee."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bloom import BloomFilter, CountingBloomFilter, optimal_parameters


class TestParameters:
    def test_optimal_parameters_reasonable(self):
        n_bits, n_hashes = optimal_parameters(1000, 0.01)
        assert n_bits > 1000
        assert 1 <= n_hashes <= 20

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(10, 1.5)
        with pytest.raises(ValueError):
            BloomFilter(n_bits=0, n_hashes=1)


class TestBloomFilter:
    def test_contains_what_was_added(self):
        bf = BloomFilter(capacity=100)
        for item in ("a", "b", 42, b"bytes"):
            bf.add(item)
        assert "a" in bf and "b" in bf and 42 in bf and b"bytes" in bf

    def test_empty_filter_contains_nothing(self):
        bf = BloomFilter(capacity=10)
        assert "x" not in bf
        assert bf.false_positive_rate() == 0.0

    def test_fp_rate_stays_near_target(self):
        bf = BloomFilter(capacity=500, fp_rate=0.01)
        bf.update(("item-%d" % i for i in range(500)))
        false_hits = sum(1 for i in range(500, 5500)
                         if ("item-%d" % i) in bf)
        assert false_hits / 5000 < 0.05

    def test_union_preserves_membership(self):
        a = BloomFilter(n_bits=1024, n_hashes=4)
        b = BloomFilter(n_bits=1024, n_hashes=4)
        a.add("left")
        b.add("right")
        merged = a.union(b)
        assert "left" in merged and "right" in merged

    def test_union_requires_matching_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(n_bits=64, n_hashes=2).union(
                BloomFilter(n_bits=128, n_hashes=2))

    def test_size_bits_is_reported(self):
        assert BloomFilter(n_bits=4096, n_hashes=3).size_bits == 4096

    def test_fill_ratio_grows(self):
        bf = BloomFilter(n_bits=256, n_hashes=3)
        assert bf.fill_ratio() == 0.0
        bf.update(range(30))
        assert 0 < bf.fill_ratio() <= 1.0


class TestCountingBloom:
    def test_remove_restores_absence(self):
        cbf = CountingBloomFilter(capacity=64)
        cbf.add("host-1")
        assert "host-1" in cbf
        assert cbf.remove("host-1")
        assert "host-1" not in cbf

    def test_remove_absent_item_fails_cleanly(self):
        cbf = CountingBloomFilter(capacity=64)
        assert not cbf.remove("never-added")

    def test_shared_bits_survive_partial_removal(self):
        cbf = CountingBloomFilter(n_bits=32, n_hashes=2)
        cbf.add("a")
        cbf.add("a")
        assert cbf.remove("a")
        assert "a" in cbf  # second copy still counted

    def test_counting_size_includes_counters(self):
        cbf = CountingBloomFilter(n_bits=128, n_hashes=2)
        assert cbf.size_bits == 128 * 4


@settings(max_examples=50)
@given(st.sets(st.integers(), min_size=0, max_size=200))
def test_no_false_negatives(items):
    """The property everything downstream depends on."""
    bf = BloomFilter(capacity=max(1, len(items)), fp_rate=0.01)
    bf.update(items)
    assert all(item in bf for item in items)


@settings(max_examples=30)
@given(st.sets(st.integers(), min_size=1, max_size=100))
def test_counting_bloom_no_false_negatives_after_churn(items):
    cbf = CountingBloomFilter(capacity=len(items) * 2)
    cbf.update(items)
    half = list(items)[: len(items) // 2]
    for item in half:
        assert cbf.remove(item)
    for item in set(items) - set(half):
        assert item in cbf
