"""Tests for the workload stochastic processes."""

import pytest

from repro.util.rng import derive_rng
from repro.workload.processes import (DiurnalModulation, FixedLifetime,
                                      FlashCrowd, FlatModulation,
                                      PoissonProcess, SpecError,
                                      UniformPopularity, ZipfPopularity,
                                      lifetime_from_spec, modulation_from_spec,
                                      popularity_from_spec)


def test_poisson_mean_interarrival_matches_rate():
    rng = derive_rng(0, "poisson")
    proc = PoissonProcess(rate=4.0)
    gaps = [proc.next_arrival(rng, 0.0) for _ in range(4000)]
    mean = sum(gaps) / len(gaps)
    assert 0.22 < mean < 0.28  # 1/rate = 0.25


def test_poisson_thinning_follows_flash_crowd():
    mod = FlashCrowd(start=10.0, end=20.0, peak=5.0)
    proc = PoissonProcess(rate=2.0, modulation=mod)
    rng = derive_rng(1, "thinning")
    t, inside, outside = 0.0, 0, 0
    while t < 30.0:
        t += proc.next_arrival(rng, t)
        if t < 30.0:
            if 10.0 <= t < 20.0:
                inside += 1
            else:
                outside += 1
    # 10 units at 5x the rate vs 20 units at 1x: expect ~100 vs ~40.
    assert inside > 1.5 * outside


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(SpecError):
        PoissonProcess(rate=0.0)


def test_flash_crowd_ramp_and_window():
    mod = FlashCrowd(start=10.0, end=20.0, peak=3.0, ramp=2.0)
    assert mod.factor(5.0) == 1.0
    assert mod.factor(9.0) == pytest.approx(2.0)   # halfway up the ramp
    assert mod.factor(15.0) == 3.0
    assert mod.factor(21.0) == pytest.approx(2.0)  # halfway down
    assert mod.factor(25.0) == 1.0
    assert mod.peak_factor() == 3.0


def test_diurnal_factor_stays_in_band():
    mod = DiurnalModulation(period=24.0, low=0.4, high=1.6)
    values = [mod.factor(t / 4.0) for t in range(0, 24 * 4)]
    assert all(0.4 - 1e-9 <= v <= 1.6 + 1e-9 for v in values)
    assert max(values) > 1.5 and min(values) < 0.5
    assert mod.peak_factor() == 1.6


def test_modulation_from_spec_kinds():
    assert isinstance(modulation_from_spec(None), FlatModulation)
    assert isinstance(modulation_from_spec({"kind": "flat"}), FlatModulation)
    mod = modulation_from_spec({"kind": "flash_crowd", "start": 1.0,
                                "end": 2.0, "peak": 4.0})
    assert isinstance(mod, FlashCrowd) and mod.peak == 4.0
    with pytest.raises(SpecError):
        modulation_from_spec({"kind": "square-wave"})
    with pytest.raises(SpecError):
        modulation_from_spec({"kind": "diurnal", "period": -1.0})


def test_lifetime_from_spec_kinds_and_sampling():
    assert lifetime_from_spec(None) is None
    rng = derive_rng(2, "life")
    fixed = lifetime_from_spec({"kind": "fixed", "value": 7.0})
    assert isinstance(fixed, FixedLifetime)
    assert fixed.sample(rng) == 7.0
    pareto = lifetime_from_spec({"kind": "pareto", "shape": 1.5,
                                 "scale": 10.0})
    samples = [pareto.sample(rng) for _ in range(2000)]
    assert min(samples) >= 10.0  # scale is the minimum lifetime
    exp = lifetime_from_spec({"kind": "exponential", "mean": 5.0})
    mean = sum(exp.sample(rng) for _ in range(4000)) / 4000
    assert 4.5 < mean < 5.5
    with pytest.raises(SpecError):
        lifetime_from_spec({"kind": "pareto", "shape": -1, "scale": 1})
    with pytest.raises(SpecError):
        lifetime_from_spec({"kind": "lognormal"})


def test_zipf_popularity_prefers_low_ranks():
    pop = ZipfPopularity(exponent=1.2)
    rng = derive_rng(3, "zipf")
    population = ["h{}".format(i) for i in range(50)]
    picks = [pop.pick(rng, population) for _ in range(3000)]
    head = sum(1 for p in picks if p in population[:5])
    tail = sum(1 for p in picks if p in population[-5:])
    assert head > 3 * tail
    # The per-size weight vector is computed once and reused.
    assert set(pop._weights_cache) == {50}


def test_popularity_from_spec_and_empty_population():
    assert isinstance(popularity_from_spec(None), UniformPopularity)
    assert isinstance(popularity_from_spec({"kind": "zipf"}), ZipfPopularity)
    with pytest.raises(SpecError):
        popularity_from_spec({"kind": "lru"})
    rng = derive_rng(0)
    with pytest.raises(ValueError):
        UniformPopularity().pick(rng, [])
    with pytest.raises(ValueError):
        ZipfPopularity().pick(rng, [])


def test_processes_are_deterministic_per_stream():
    proc = PoissonProcess(rate=3.0, modulation=FlashCrowd(5.0, 8.0, 2.0))
    a = [proc.next_arrival(derive_rng(7, "s", i), 0.0) for i in range(20)]
    b = [proc.next_arrival(derive_rng(7, "s", i), 0.0) for i in range(20)]
    assert a == b
