"""Failure handling: host, router and link failures (Section 3.2)."""

import random

import pytest

from repro.intra.failure import directed_flood_cost


class TestHostFailure:
    def test_ring_heals_after_each_failure(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, seed=2)
        rng = random.Random(0)
        for _ in range(25):
            victim = rng.choice(sorted(net.hosts))
            net.fail_host(victim)
            net.check_ring()

    def test_failed_host_unreachable(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30)
        victim = sorted(net.hosts)[0]
        dead_id = net.hosts[victim].id
        net.fail_host(victim)
        result = net.send_to_id(net.topology.routers[0], dead_id)
        assert not result.delivered

    def test_no_pointers_to_dead_id_remain(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, seed=4)
        victim = sorted(net.hosts)[7]
        dead_id = net.hosts[victim].id
        net.fail_host(victim)
        for router in net.routers.values():
            assert dead_id not in router.cache
            for vn in router.vn_table.values():
                assert all(p.dest_id != dead_id for p in vn.successors)
                assert dead_id not in vn.ephemeral_children

    def test_failure_cost_comparable_to_join(self, intra_net_factory):
        """Paper §6.2: failure overhead comparable to join overhead."""
        net = intra_net_factory(n_hosts=150, seed=5)
        join_avg = sum(net.stats.operation_costs("join")) / 150
        rng = random.Random(1)
        costs = [net.fail_host(rng.choice(sorted(net.hosts)))
                 for _ in range(40)]
        fail_avg = sum(costs) / len(costs)
        assert fail_avg < 6 * join_avg

    def test_unknown_host_raises(self, intra_net_factory):
        net = intra_net_factory(n_hosts=5)
        with pytest.raises(KeyError):
            net.fail_host("nope")

    def test_traffic_flows_after_failures(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, seed=6)
        rng = random.Random(2)
        for _ in range(15):
            net.fail_host(rng.choice(sorted(net.hosts)))
        for _ in range(30):
            a, b = net.random_host_pair()
            assert net.send(a, b).delivered

    def test_ephemeral_failure_cleans_parent(self, intra_net_factory):
        net = intra_net_factory(n_hosts=40, seed=9, ephemeral_fraction=0.3)
        eph = next(name for name, vn in net.hosts.items() if vn.ephemeral)
        vn = net.hosts[eph]
        parent = net.vn_index[vn.predecessor.dest_id]
        assert vn.id in parent.ephemeral_children
        net.fail_host(eph)
        assert vn.id not in parent.ephemeral_children
        net.check_ring()


class TestRouterFailure:
    def test_hosts_rehome_and_ring_heals(self, intra_net_factory):
        net = intra_net_factory(n_hosts=80, seed=3)
        victim = net.hosts[sorted(net.hosts)[0]].router
        resident = [name for name, vn in net.hosts.items()
                    if vn.router == victim]
        net.fail_router(victim)
        net.check_ring()
        # Every resident host rejoined elsewhere.
        for name in resident:
            assert name in net.hosts
            assert net.hosts[name].router != victim
            assert net.lsmap.is_router_up(net.hosts[name].router)

    def test_failover_router_is_deterministic(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        ordered = sorted(net.routers)
        target = net.failover_router(ordered[0], "h")
        assert target == ordered[1]
        net.lsmap.fail_router(ordered[1])
        assert net.failover_router(ordered[0], "h") == ordered[2]

    def test_delivery_after_router_failure(self, intra_net_factory):
        net = intra_net_factory(n_hosts=80, seed=3)
        victim = net.topology.routers[3]
        net.fail_router(victim)
        for _ in range(30):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            assert result.delivered
            assert victim not in result.path


class TestLinkFailure:
    def test_no_ring_change_on_link_failure(self, intra_net_factory):
        net = intra_net_factory(n_hosts=50, seed=8)
        members_before = {vn.id for vn in net.ring_members()}
        a, b = next(iter(net.lsmap.live_graph.edges()))
        net.fail_link(a, b)
        assert {vn.id for vn in net.ring_members()} == members_before

    def test_cached_routes_over_link_invalidated(self, intra_net_factory):
        net = intra_net_factory(n_hosts=80, seed=8)
        a, b = next(iter(net.lsmap.live_graph.edges()))
        net.fail_link(a, b)
        for router in net.routers.values():
            for ptr in router.cache.entries():
                assert not ptr.uses_link(a, b)

    def test_delivery_survives_link_failures(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, seed=8)
        rng = random.Random(5)
        edges = list(net.lsmap.live_graph.edges())
        rng.shuffle(edges)
        failed = 0
        for a, b in edges[:5]:
            net.lsmap.fail_link(a, b)
            if len(net.lsmap.components()) > 1:
                net.lsmap.restore_link(a, b)  # keep connected for this test
            else:
                net.fail_link(a, b) if net.lsmap.is_link_up(a, b) else None
                failed += 1
        for _ in range(30):
            x, y = net.random_host_pair()
            assert net.send(x, y).delivered


class TestDirectedFlood:
    def test_cost_is_edge_union(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        routers = net.topology.routers
        single = directed_flood_cost(net, routers[0], [routers[1]])
        assert single == net.paths.hop_dist(routers[0], routers[1])
        both = directed_flood_cost(net, routers[0], routers[1:3])
        assert both <= (net.paths.hop_dist(routers[0], routers[1])
                        + net.paths.hop_dist(routers[0], routers[2]))

    def test_empty_targets_cost_nothing(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        assert directed_flood_cost(net, net.topology.routers[0], []) == 0
