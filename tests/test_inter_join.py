"""Interdomain joining (Algorithm 3): strategies, condition (b), oracle
agreement, bootstrap."""

import pytest

from repro.inter import routing
from repro.inter.canon import InterJoinError
from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.topology.asgraph import synthetic_as_graph
from repro.topology.hosts import PlannedHost


class TestJoinBasics:
    def test_rings_consistent_under_every_strategy(self, inter_net_factory):
        for strategy in JoinStrategy:
            net = inter_net_factory(n_hosts=0, strategy=strategy, n_fingers=4)
            net.join_random_hosts(80)
            net.check_rings()
            assert net.lookup_mismatches == 0

    def test_distributed_lookups_agree_with_oracle(self, inter_net_readonly):
        assert inter_net_readonly.lookup_mismatches == 0

    def test_receipt_fields(self, inter_net_factory):
        net = inter_net_factory(n_hosts=0, n_fingers=6)
        host = net.next_planned_host()
        receipt = net.join_host(host)
        assert receipt.flat_id == host.flat_id
        assert receipt.home_as == host.attach_at
        assert receipt.messages > 0
        assert receipt.levels_joined >= 2
        assert receipt.fingers <= 6

    def test_duplicate_id_rejected(self, inter_net_factory):
        net = inter_net_factory(n_hosts=0)
        host = net.next_planned_host()
        net.join_host(host)
        with pytest.raises(InterJoinError):
            net.join_host(PlannedHost(name="dup", attach_at=host.attach_at,
                                      key_pair=host.key_pair))

    def test_join_via_failed_as_rejected(self, inter_net_factory):
        net = inter_net_factory(n_hosts=10)
        host = net.next_planned_host()
        net.fail_as(host.attach_at)
        with pytest.raises(InterJoinError):
            net.join_host(host)


class TestStrategyCosts:
    def test_paper_ordering_of_join_costs(self):
        """Fig 8a: ephemeral < single-homed ≤ multihomed < peering."""
        means = {}
        for strategy in JoinStrategy:
            graph = synthetic_as_graph(n_ases=60, seed=12)
            net = InterDomainNetwork(graph, n_fingers=4, seed=12,
                                     strategy=strategy)
            receipts = net.join_random_hosts(100)
            means[strategy] = sum(r.messages for r in receipts) / 100
        assert means[JoinStrategy.EPHEMERAL] < means[JoinStrategy.SINGLE_HOMED]
        assert means[JoinStrategy.SINGLE_HOMED] <= \
            means[JoinStrategy.MULTIHOMED] * 1.05
        assert means[JoinStrategy.MULTIHOMED] < means[JoinStrategy.PEERING]

    def test_multihomed_not_much_more_than_single(self):
        """"Surprisingly … the cost of a multi-homed join is not
        significantly larger than that of a single-homed join" thanks to
        redundant-lookup elimination."""
        graph = synthetic_as_graph(n_ases=60, seed=13)
        single = InterDomainNetwork(graph, n_fingers=0, seed=13,
                                    strategy=JoinStrategy.SINGLE_HOMED)
        single.join_random_hosts(100)
        graph2 = synthetic_as_graph(n_ases=60, seed=13)
        multi = InterDomainNetwork(graph2, n_fingers=0, seed=13,
                                   strategy=JoinStrategy.MULTIHOMED)
        multi.join_random_hosts(100)
        s = sum(single.stats.operation_costs("join")) / 100
        m = sum(multi.stats.operation_costs("join")) / 100
        assert m < 1.6 * s

    def test_more_fingers_cost_more_messages(self, inter_net_factory):
        lean = inter_net_factory(n_hosts=60, n_fingers=2, seed=3)
        rich = inter_net_factory(n_hosts=60, n_fingers=24, seed=3)
        lean_cost = sum(lean.stats.operation_costs("join")) / 60
        rich_cost = sum(rich.stats.operation_costs("join")) / 60
        assert rich_cost > lean_cost


class TestConditionB:
    def test_state_is_logarithmic_not_linear(self, inter_net_readonly):
        """Condition (b) keeps per-ID pointer state O(log n): far fewer
        stored successors than joined levels in the typical case."""
        net = inter_net_readonly
        total_levels = 0
        total_stored = 0
        for vn in net.hosts.values():
            total_levels += len(vn.joined_levels)
            total_stored += len(vn.succ_by_level)
        assert total_stored < total_levels

    def test_effective_successor_covers_unstored_levels(self, inter_net_readonly):
        net = inter_net_readonly
        for vn in list(net.hosts.values())[:40]:
            for level in vn.joined_levels:
                eff = routing.effective_successor(net, vn, level)
                ring = net.ring_at(level)
                if len(ring) < 2:
                    continue
                assert eff is not None
                assert eff.dest_id == ring.successor(vn.id)


class TestBootstrapRegistry:
    def test_first_host_in_empty_internet(self, inter_net_factory):
        net = inter_net_factory(n_hosts=0)
        receipt = net.join_host(net.next_planned_host())
        assert receipt.messages >= 0
        net.check_rings()

    def test_second_host_reaches_first(self, inter_net_factory):
        net = inter_net_factory(n_hosts=0)
        h1 = net.next_planned_host()
        h2 = net.next_planned_host()
        net.join_host(h1)
        net.join_host(h2)
        net.check_rings()
        assert net.send(h1.name, h2.name).delivered
        assert net.send(h2.name, h1.name).delivered


class TestPointerRoutes:
    def test_pointer_routes_are_valley_free(self, inter_net_readonly):
        net = inter_net_readonly
        for vn in list(net.hosts.values())[:50]:
            for ptr in vn.candidate_pointers():
                assert net.policy.route_is_valley_free(ptr.as_route)
                assert ptr.as_route[0] == vn.home_as

    def test_scoped_pointers_stay_in_level_subtree(self, inter_net_readonly):
        net = inter_net_readonly
        for vn in list(net.hosts.values())[:50]:
            for level, ptr in vn.succ_by_level.items():
                subtree = net.policy.subtree(level)
                assert all(asn in subtree for asn in ptr.as_route)
