"""Sharded multiprocess simulation core (``repro.sim.shard``).

The load-bearing property: an N-shard run is *bit-identical* to the
1-shard run and to the plain in-process network — same delivery
metrics, same protocol message counters, same snapshot ``state_hash``.
"""

import json
import pickle

import pytest

from repro import snapshot
from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.sim.shard import (ShardCoordinator, ShardError, ShardPlan,
                             ShardWorker, build_replica)
from repro.sim.stats import StatsCollector
from repro.topology.asgraph import synthetic_as_graph
from repro.util.perf import PerfRegistry

SEED, N_ASES, HOSTS, SENDS = 0, 40, 260, 120
RECIPE = {"n_ases": N_ASES, "seed": SEED, "n_fingers": 8,
          "strategy": "multihomed", "cache_entries": 0}


def run_legacy():
    """The plain single-process reference run of the same workload."""
    asg = synthetic_as_graph(n_ases=N_ASES, seed=SEED)
    net = InterDomainNetwork(asg, n_fingers=8, seed=SEED,
                             strategy=JoinStrategy.MULTIHOMED,
                             cache_entries=0)
    net.join_random_hosts(HOSTS)
    net.flush_indexes()
    join_state_hash = snapshot.state_hash(net)
    net.bgp.warm()
    delivered = cached = 0
    hops = stretch = 0.0
    for _ in range(SENDS):
        result = net.send(*net.random_host_pair())
        if result.delivered:
            delivered += 1
            hops += result.hops
            if result.optimal_hops > 0:
                stretch += result.hops / result.optimal_hops
        cached += bool(result.used_cache)
    return {
        "metrics": {
            "sent": SENDS, "delivered": delivered, "cache_hits": cached,
            "mean_hops": round(hops / delivered, 4) if delivered else 0.0,
            "mean_stretch": round(stretch / delivered, 4)
            if delivered else 0.0,
        },
        "messages": dict(net.stats.messages),
        "mismatches": net.lookup_mismatches,
        "join_state_hash": join_state_hash,
        "state_hash": snapshot.state_hash(net),
    }


@pytest.fixture(scope="module")
def legacy():
    return run_legacy()


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    """One real 2-worker multiprocess run of the same workload."""
    snap_path = str(tmp_path_factory.mktemp("shard") / "sharded.snap")
    with ShardCoordinator(RECIPE, n_shards=2, window_ops=64) as sim:
        lookahead = sim.lookahead
        sim.join_hosts(HOSTS)
        sim.flush_indexes()
        sim.warm_oracle()
        metrics = sim.run_sends(SENDS)
        hashes = sim.state_hash(all_replicas=True)
        worker = sim.metrics()
        info = sim.info()
        saved_hash = sim.save(snap_path)
        merged = sim.merged_perf()
    return {
        "lookahead": lookahead, "metrics": metrics, "hashes": hashes,
        "worker": worker, "info": info, "snap_path": snap_path,
        "saved_hash": saved_hash, "perf": merged,
    }


class TestShardPlan:
    def test_deterministic_and_disjoint(self):
        asg = synthetic_as_graph(n_ases=N_ASES, seed=SEED)
        plan_a = ShardPlan.from_graph(asg, 3)
        plan_b = ShardPlan.from_graph(
            synthetic_as_graph(n_ases=N_ASES, seed=SEED), 3)
        assert plan_a.shard_of == plan_b.shard_of
        assert plan_a.ghost_edges == plan_b.ghost_edges
        assert set(plan_a.shard_of) == set(asg.ases())
        assert set(plan_a.shard_of.values()) == {0, 1, 2}

    def test_load_balanced_by_hosts(self):
        asg = synthetic_as_graph(n_ases=N_ASES, seed=SEED)
        plan = ShardPlan.from_graph(asg, 2)
        loads = [0, 0]
        for asn, shard in plan.shard_of.items():
            loads[shard] += asg.hosts(asn)
        assert max(loads) <= 1.5 * min(loads)

    def test_ghost_edges_cross_shards(self):
        asg = synthetic_as_graph(n_ases=N_ASES, seed=SEED)
        plan = ShardPlan.from_graph(asg, 2)
        assert plan.ghost_edges
        for a, b in plan.ghost_edges:
            assert plan.owner(a) != plan.owner(b)
        assert plan.lookahead > 0

    def test_single_shard_has_no_ghosts(self):
        asg = synthetic_as_graph(n_ases=N_ASES, seed=SEED)
        plan = ShardPlan.from_graph(asg, 1)
        assert plan.ghost_edges == ()
        assert plan.lookahead > 0

    def test_rejects_bad_shard_count(self):
        asg = synthetic_as_graph(n_ases=N_ASES, seed=SEED)
        with pytest.raises(ShardError):
            ShardPlan.from_graph(asg, 0)


class TestStatsAbsorb:
    def test_absorb_merges_counters_and_charges_op(self):
        stats = StatsCollector()
        with stats.operation("join") as record:
            stats.absorb({"join": 3, "repair": 1}, {"A": 2},
                         into_op=record)
        assert stats.messages["join"] == 3
        assert stats.messages["repair"] == 1
        assert stats.router_traversals["A"] == 2
        assert stats.operations[-1]["messages"] == 4

    def test_absorb_without_op(self):
        stats = StatsCollector()
        stats.absorb({"route": 5}, None)
        assert stats.messages["route"] == 5
        assert not stats.operations


class TestPerfMerge:
    def test_merge_folds_counters_timers_histograms(self):
        a, b = PerfRegistry(), PerfRegistry()
        a.counter("x")
        b.counter("x")
        b.counter("y")
        with a.timed("t"):
            pass
        with b.timed("t"):
            pass
        a.observe("h", 1.0)
        b.observe("h", 2.0)
        b.gauge("g", 7)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["x"] == 2
        assert snap["counters"]["y"] == 1
        assert snap["timers"]["t"]["calls"] == 2
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 2


class TestBuildReplica:
    def test_identical_recipes_build_identical_state(self):
        assert (snapshot.state_hash(build_replica(RECIPE))
                == snapshot.state_hash(build_replica(dict(RECIPE))))

    def test_rejects_pointer_caches(self):
        with pytest.raises(ShardError):
            build_replica({**RECIPE, "cache_entries": 32})

    def test_rejects_bloom_peering(self):
        with pytest.raises(ShardError):
            build_replica({**RECIPE, "peering_mode": "bloom"})


class TestInProcessWorker:
    """Window mechanics without subprocesses: one worker, pickled effects
    (as the pipes would deliver them), checked against the legacy run."""

    def test_windows_with_pickled_effects_match_legacy(self, legacy):
        worker = ShardWorker(None, dict(RECIPE), 0, 1)
        done = 0
        while done < HOSTS:
            count = min(64, HOSTS - done)
            effects = worker._run_window("join", count)
            assert len(effects) == count
            effects = pickle.loads(pickle.dumps(effects))
            worker._apply_effects(sorted(effects, key=lambda e: e["seq"]))
            done += count
        worker.net.flush_indexes()
        assert (snapshot.state_hash(worker.net)
                == legacy["join_state_hash"])

    def test_virtual_clock_advances_one_lookahead_per_window(self):
        worker = ShardWorker(None, dict(RECIPE), 0, 1)
        assert worker.loop.now == 0.0
        worker._apply_effects(worker._run_window("join", 10))
        assert worker.loop.now == pytest.approx(worker.plan.lookahead)
        worker._apply_effects(worker._run_window("join", 10))
        assert worker.loop.now == pytest.approx(2 * worker.plan.lookahead)


class TestEquivalence:
    """The determinism contract, against real worker processes."""

    def test_metrics_match_legacy(self, sharded, legacy):
        assert sharded["metrics"] == legacy["metrics"]

    def test_message_counters_match_legacy(self, sharded, legacy):
        assert sharded["worker"]["messages"] == legacy["messages"]
        assert (sharded["worker"]["lookup_mismatches"]
                == legacy["mismatches"])

    def test_state_hash_matches_legacy_on_every_replica(self, sharded,
                                                        legacy):
        assert len(set(sharded["hashes"])) == 1
        assert sharded["hashes"][0] == legacy["state_hash"]

    def test_snapshot_roundtrip(self, sharded, legacy):
        assert sharded["saved_hash"] == legacy["state_hash"]
        net = snapshot.load(sharded["snap_path"], verify=True)
        assert len(net.hosts) == HOSTS
        meta = snapshot.describe(sharded["snap_path"])["meta"]
        assert meta["shards"] == 2

    def test_info_reports_shards(self, sharded):
        assert sharded["info"]["shards"] == 2
        assert sharded["info"]["hosts"] == HOSTS
        assert sharded["info"]["lookahead"] == sharded["lookahead"]

    def test_merged_perf_covers_both_shards(self, sharded):
        snap = sharded["perf"].snapshot()
        assert snap["gauges"]["shard.count"] == 2
        assert "shard.0.virtual_now" in snap["gauges"]
        assert "shard.1.virtual_now" in snap["gauges"]
        # Walks run once per op across the fleet (owner-only), installs
        # on every replica — the merged timer shows exactly one join per
        # host per replica.
        assert snap["timers"]["inter.join"]["calls"] == 2 * HOSTS


class TestCoordinatorErrors:
    def test_worker_build_failure_surfaces(self):
        with pytest.raises(ShardError):
            ShardCoordinator({**RECIPE, "cache_entries": 8},
                             n_shards=2).start()

    def test_rejects_bad_window(self):
        with pytest.raises(ShardError):
            ShardCoordinator(RECIPE, n_shards=2, window_ops=0)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ShardError):
            ShardCoordinator(RECIPE, n_shards=0)


class TestTelemetry:
    """Cross-shard trace/metrics collection (DESIGN.md §12)."""

    T_HOSTS, T_SENDS = 80, 40

    def _run(self, tmp_path, n_shards, sample=1.0, tag=""):
        trace = tmp_path / "trace-{}{}.jsonl".format(n_shards, tag)
        metrics = tmp_path / "metrics-{}{}.jsonl".format(n_shards, tag)
        small = {**RECIPE, "n_ases": 30}
        with ShardCoordinator(small, n_shards=n_shards, window_ops=32,
                              trace_out=str(trace), trace_sample=sample,
                              metrics_out=str(metrics)) as sim:
            sim.join_hosts(self.T_HOSTS)
            sim.run_sends(self.T_SENDS)
            digest = sim.state_hash()
            windows = sim.windows_synced
            live = dict(sim.live_perf.counters)
        return (trace.read_bytes(), metrics.read_bytes(), digest,
                windows, live)

    def test_two_shard_telemetry_matches_single_shard_bytes(self, tmp_path):
        t1, m1, h1, w1, _ = self._run(tmp_path, 1)
        t2, m2, h2, w2, _ = self._run(tmp_path, 2)
        assert t1 and t1 == t2
        assert m1 and m1 == m2
        assert h1 == h2
        assert w1 == w2 > 0

    def test_sampling_is_shard_count_invariant_and_thins(self, tmp_path):
        full, _, _, _, _ = self._run(tmp_path, 1)
        s1, _, _, _, _ = self._run(tmp_path, 1, sample=0.25, tag="-s")
        s2, _, _, _, _ = self._run(tmp_path, 2, sample=0.25, tag="-s")
        assert s1 == s2
        assert 0 < len(s1) < len(full)

    def test_renumbered_trace_is_globally_consistent(self, tmp_path):
        trace_bytes, metrics_bytes, _, windows, live = self._run(tmp_path, 2)
        records = [json.loads(line)
                   for line in trace_bytes.decode().splitlines()]
        # Sequence numbers are contiguous from 1 under the coordinator's
        # global numbering, regardless of which worker emitted them.
        assert [r["seq"] for r in records] == list(
            range(1, len(records) + 1))
        # Parents are causal: every non-root parent seq appears earlier.
        seen = set()
        for r in records:
            if r["parent"] != -1:
                assert r["parent"] in seen
            seen.add(r["seq"])
        # Window-metrics rows mirror the synced windows and carry the
        # op-kind breakdown.
        rows = [json.loads(line)
                for line in metrics_bytes.decode().splitlines()]
        assert len(rows) == windows
        assert {row["kind"] for row in rows} <= {"join", "send"}
        assert sum(row["ops"] for row in rows) == self.T_HOSTS + self.T_SENDS
        # The coordinator's live view folded per-window counter deltas.
        assert live.get("shard.windows") == windows
        assert any(k.startswith("inter.") or k.startswith("fwd.")
                   for k in live)

    def test_rejects_bad_trace_sample(self):
        with pytest.raises(ShardError):
            ShardCoordinator(RECIPE, n_shards=2, trace_sample=1.5)
        with pytest.raises(ShardError):
            ShardCoordinator(RECIPE, n_shards=2, trace_sample=-0.1)
