"""Tests for the perf counter/timer registry (repro.util.perf)."""

import time

from repro.util import perf
from repro.util.perf import PERF, PerfRegistry


def test_counter_accumulates():
    reg = PerfRegistry()
    reg.counter("x")
    reg.counter("x", 4)
    reg.counter("y", 2.5)
    assert reg.value("x") == 5
    assert reg.value("y") == 2.5
    assert reg.value("missing") == 0
    assert reg.value("missing", default=-1) == -1


def test_timer_records_calls_and_seconds():
    reg = PerfRegistry()
    with reg.timed("work"):
        time.sleep(0.01)
    with reg.timed("work"):
        pass
    calls, seconds, max_seconds = reg.timers["work"]
    assert calls == 2
    assert seconds >= 0.01
    # The max is the slow call alone, so it must carry most of the total
    # yet stay below it (the fast call still took > 0 seconds).
    assert 0.01 <= max_seconds <= seconds


def test_timer_snapshot_reports_mean_and_max():
    reg = PerfRegistry()
    with reg.timed("work"):
        time.sleep(0.01)
    with reg.timed("work"):
        pass
    snap = reg.snapshot()["timers"]["work"]
    assert snap["calls"] == 2
    assert snap["max"] >= snap["mean"] > 0
    assert abs(snap["mean"] - snap["seconds"] / 2) < 1e-6
    assert snap["max"] <= snap["seconds"]


def test_snapshot_is_json_shaped_and_detached():
    reg = PerfRegistry()
    reg.counter("a", 3)
    with reg.timed("t"):
        pass
    snap = reg.snapshot()
    assert snap["counters"] == {"a": 3}
    assert snap["timers"]["t"]["calls"] == 1
    assert snap["timers"]["t"]["seconds"] >= 0
    # The snapshot must not alias live registry state.
    reg.counter("a")
    assert snap["counters"]["a"] == 3


def test_reset_clears_everything():
    reg = PerfRegistry()
    reg.counter("a")
    with reg.timed("t"):
        pass
    reg.reset()
    assert reg.counters == {}
    assert reg.timers == {}


def test_module_aliases_hit_global_registry():
    PERF.reset()
    perf.counter("alias.check", 2)
    assert PERF.value("alias.check") == 2
    snap = perf.snapshot()
    assert snap["counters"]["alias.check"] == 2
    perf.reset()
    assert PERF.counters == {}


def test_gauge_keeps_last_value():
    reg = PerfRegistry()
    reg.gauge("depth", 3)
    reg.gauge("depth", 7)
    assert reg.gauges["depth"] == 7
    snap = reg.snapshot()
    assert snap["gauges"] == {"depth": 7}


def test_histogram_percentiles_and_snapshot():
    reg = PerfRegistry()
    for v in [5, 1, 3, 2, 4]:
        reg.observe("lat", v)
    hist = reg.histogram("lat")
    assert len(hist) == 5
    assert hist.percentile(0.0) == 1
    assert hist.percentile(0.5) == 3
    assert hist.percentile(1.0) == 5
    snap = hist.snapshot()
    assert snap["count"] == 5
    assert snap["min"] == 1 and snap["max"] == 5
    assert snap["mean"] == 3
    assert snap["p50"] == 3
    # Recording after a snapshot must not mutate the taken snapshot.
    reg.observe("lat", 100)
    assert snap["max"] == 5
    assert reg.histogram("lat").percentile(1.0) == 100


def test_empty_histogram_snapshot():
    reg = PerfRegistry()
    hist = reg.histogram("nothing")
    assert hist.snapshot() == {"count": 0}
    assert len(hist) == 0


def test_registry_snapshot_omits_empty_sections():
    reg = PerfRegistry()
    reg.counter("a")
    snap = reg.snapshot()
    assert "gauges" not in snap and "histograms" not in snap
    reg.observe("h", 1.5)
    reg.gauge("g", 2)
    snap = reg.snapshot()
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["gauges"]["g"] == 2


def test_reset_clears_gauges_and_histograms():
    reg = PerfRegistry()
    reg.gauge("g", 1)
    reg.observe("h", 1)
    reg.reset()
    assert reg.gauges == {}
    assert reg.histograms == {}


def test_histogram_reset_only_clears_values():
    reg = PerfRegistry()
    reg.observe("h", 9)
    hist = reg.histogram("h")
    hist.reset()
    assert len(hist) == 0
    assert hist.snapshot() == {"count": 0}
    # Still registered under the same name.
    assert reg.histogram("h") is hist


def test_module_aliases_for_gauge_histogram():
    PERF.reset()
    try:
        perf.gauge("alias.g", 4)
        perf.observe("alias.h", 2.0)
        assert PERF.gauges["alias.g"] == 4
        assert perf.histogram("alias.h").percentile(0.5) == 2.0
    finally:
        perf.reset()


def test_experiment_drivers_attach_perf(tmp_path):
    from repro.harness import experiments

    result = experiments.fig5b_join_overhead_cdf(
        profiles=("AS3967",), n_hosts=30, seed=0)
    assert "perf" in result
    snap = result["perf"]
    assert "counters" in snap and "timers" in snap
    # Joins route lookup packets, so forwarding counters must be present.
    assert snap["counters"].get("fwd.packets", 0) > 0
    assert any(name.startswith("experiment.") for name in snap["timers"])


def test_report_formatters_skip_perf_key():
    from repro.harness import experiments, report

    result = experiments.fig5b_join_overhead_cdf(
        profiles=("AS3967",), n_hosts=30, seed=0)
    text = report.format_fig5b(result)
    assert "AS3967" in text
    assert "perf" not in text


def test_merge_folds_histograms_sample_by_sample():
    a = PerfRegistry()
    b = PerfRegistry()
    for v in (1.0, 2.0, 3.0):
        a.observe("lat", v)
    for v in (10.0, 20.0):
        b.observe("lat", v)
    b.observe("only.b", 5.0)
    a.merge(b)
    snap = a.snapshot()["histograms"]
    assert snap["lat"]["count"] == 5
    assert snap["lat"]["min"] == 1.0 and snap["lat"]["max"] == 20.0
    assert snap["only.b"]["count"] == 1
    # The source registry keeps its own samples untouched.
    assert b.snapshot()["histograms"]["lat"]["count"] == 2


def test_merge_gauges_last_write_wins_but_shard_prefixes_coexist():
    merged = PerfRegistry()
    shard0 = PerfRegistry()
    shard1 = PerfRegistry()
    # A non-namespaced gauge collides: the last registry folded wins.
    shard0.gauge("ring.depth", 3)
    shard1.gauge("ring.depth", 7)
    # Namespaced per-shard gauges never collide.
    shard0.gauge("shard.0.hosts", 40)
    shard1.gauge("shard.1.hosts", 41)
    merged.merge(shard0)
    merged.merge(shard1)
    assert merged.gauges["ring.depth"] == 7
    assert merged.gauges["shard.0.hosts"] == 40
    assert merged.gauges["shard.1.hosts"] == 41


def test_merge_tolerates_legacy_two_element_timer_cells():
    old = PerfRegistry()
    old.timers["work"] = [3, 0.6]  # pickled before max tracking existed
    new = PerfRegistry()
    with new.timed("work"):
        pass
    new.merge(old)
    calls, seconds, max_seconds = new.timers["work"]
    assert calls == 4
    assert seconds >= 0.6
    assert max_seconds >= 0.0
    # And merging into an empty registry synthesises a 0.0 max.
    fresh = PerfRegistry()
    fresh.merge(old)
    assert fresh.timers["work"] == [3, 0.6, 0.0]


def test_merge_then_snapshot_is_order_insensitive_for_additive_state():
    def shard(seed):
        reg = PerfRegistry()
        reg.counter("fwd.packets", 10 * seed)
        reg.timers["inter.join"] = [seed, 0.1 * seed, 0.05 * seed]
        for v in range(seed):
            reg.observe("lat", float(v))
        reg.gauge("shard.{}.hosts".format(seed), seed)
        return reg

    ab = PerfRegistry()
    ab.merge(shard(1))
    ab.merge(shard(2))
    ba = PerfRegistry()
    ba.merge(shard(2))
    ba.merge(shard(1))
    assert ab.snapshot() == ba.snapshot()
