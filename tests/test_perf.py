"""Tests for the perf counter/timer registry (repro.util.perf)."""

import time

from repro.util import perf
from repro.util.perf import PERF, PerfRegistry


def test_counter_accumulates():
    reg = PerfRegistry()
    reg.counter("x")
    reg.counter("x", 4)
    reg.counter("y", 2.5)
    assert reg.value("x") == 5
    assert reg.value("y") == 2.5
    assert reg.value("missing") == 0
    assert reg.value("missing", default=-1) == -1


def test_timer_records_calls_and_seconds():
    reg = PerfRegistry()
    with reg.timed("work"):
        time.sleep(0.01)
    with reg.timed("work"):
        pass
    calls, seconds = reg.timers["work"]
    assert calls == 2
    assert seconds >= 0.01


def test_snapshot_is_json_shaped_and_detached():
    reg = PerfRegistry()
    reg.counter("a", 3)
    with reg.timed("t"):
        pass
    snap = reg.snapshot()
    assert snap["counters"] == {"a": 3}
    assert snap["timers"]["t"]["calls"] == 1
    assert snap["timers"]["t"]["seconds"] >= 0
    # The snapshot must not alias live registry state.
    reg.counter("a")
    assert snap["counters"]["a"] == 3


def test_reset_clears_everything():
    reg = PerfRegistry()
    reg.counter("a")
    with reg.timed("t"):
        pass
    reg.reset()
    assert reg.counters == {}
    assert reg.timers == {}


def test_module_aliases_hit_global_registry():
    PERF.reset()
    perf.counter("alias.check", 2)
    assert PERF.value("alias.check") == 2
    snap = perf.snapshot()
    assert snap["counters"]["alias.check"] == 2
    perf.reset()
    assert PERF.counters == {}


def test_experiment_drivers_attach_perf(tmp_path):
    from repro.harness import experiments

    result = experiments.fig5b_join_overhead_cdf(
        profiles=("AS3967",), n_hosts=30, seed=0)
    assert "perf" in result
    snap = result["perf"]
    assert "counters" in snap and "timers" in snap
    # Joins route lookup packets, so forwarding counters must be present.
    assert snap["counters"].get("fwd.packets", 0) > 0
    assert any(name.startswith("experiment.") for name in snap["timers"])


def test_report_formatters_skip_perf_key():
    from repro.harness import experiments, report

    result = experiments.fig5b_join_overhead_cdf(
        profiles=("AS3967",), n_hosts=30, seed=0)
    text = report.format_fig5b(result)
    assert "AS3967" in text
    assert "perf" not in text
