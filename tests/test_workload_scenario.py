"""Tests for the declarative Scenario spec and its JSON round-trip."""

import pytest

from repro.workload.scenario import (BUILTIN_SCENARIOS, ChurnSpec, FaultSpec,
                                     NetworkSpec, Phase, Scenario,
                                     ScenarioError, TrafficSpec,
                                     builtin_scenario)


def test_builtin_scenarios_validate_and_round_trip():
    for name in BUILTIN_SCENARIOS:
        scenario = builtin_scenario(name, seed=5)
        assert scenario.seed == 5
        scenario.validate()
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone.to_dict() == scenario.to_dict()


def test_json_round_trip():
    scenario = builtin_scenario("steady-churn")
    clone = Scenario.from_json(scenario.to_json())
    assert clone.to_dict() == scenario.to_dict()


def test_load_from_file(tmp_path):
    path = tmp_path / "s.json"
    path.write_text(builtin_scenario("flash-crowd").to_json())
    assert Scenario.load(str(path)).name == "flash-crowd"


def test_malformed_json_raises_scenario_error():
    with pytest.raises(ScenarioError, match="invalid scenario JSON"):
        Scenario.from_json("{not json")


def test_unknown_builtin():
    with pytest.raises(ScenarioError, match="unknown builtin"):
        builtin_scenario("nope")


def test_scenario_missing_name():
    with pytest.raises(ScenarioError, match="missing 'name'"):
        Scenario.from_dict({"duration": 10})


def test_unknown_fault_kind_rejected():
    with pytest.raises(ScenarioError, match="unknown fault kind"):
        FaultSpec.from_dict({"kind": "meteor", "at": 1.0})


def test_fault_params_survive_round_trip():
    spec = FaultSpec.from_dict({"kind": "link_cut", "at": 3.0, "count": 2,
                                "restore_after": 5.0})
    assert spec.params == {"count": 2, "restore_after": 5.0}
    assert spec.to_dict() == {"kind": "link_cut", "at": 3.0, "count": 2,
                              "restore_after": 5.0}


def test_fault_past_duration_rejected():
    scenario = Scenario(name="x", duration=10.0,
                        faults=[FaultSpec(kind="link_cut", at=11.0)])
    with pytest.raises(ScenarioError, match="past the run end"):
        scenario.validate()


def test_phase_past_duration_rejected():
    scenario = Scenario(name="x", duration=10.0,
                        phases=[Phase(name="late", start=10.0, end=20.0)])
    with pytest.raises(ScenarioError, match="starts at"):
        scenario.validate()


def test_phase_end_before_start_rejected():
    with pytest.raises(ScenarioError, match="must follow start"):
        Phase(name="bad", start=5.0, end=5.0).validate()


def test_as_faults_need_inter_network():
    scenario = Scenario(name="x", network=NetworkSpec(kind="intra"),
                        faults=[FaultSpec(kind="as_depeer", at=1.0)])
    with pytest.raises(ScenarioError, match="interdomain"):
        scenario.validate()


def test_router_faults_need_intra_network():
    scenario = Scenario(name="x", network=NetworkSpec(kind="inter"),
                        faults=[FaultSpec(kind="router_crash", at=1.0)])
    with pytest.raises(ScenarioError, match="intradomain"):
        scenario.validate()


def test_inter_network_rejects_lifetimes():
    scenario = Scenario(
        name="x", network=NetworkSpec(kind="inter"),
        phases=[Phase(name="p", start=0.0, end=10.0,
                      churn=ChurnSpec(arrival_rate=1.0,
                                      lifetime={"kind": "fixed",
                                                "value": 5.0}))])
    with pytest.raises(ScenarioError, match="graceful-departure"):
        scenario.validate()


def test_bad_departure_mode_rejected():
    with pytest.raises(ScenarioError, match="departure"):
        ChurnSpec(arrival_rate=1.0, departure="vanish").validate()


def test_bad_subspec_surfaces_as_scenario_error():
    with pytest.raises(ScenarioError):
        ChurnSpec(arrival_rate=1.0,
                  lifetime={"kind": "mystery"}).validate()
    with pytest.raises(ScenarioError):
        TrafficSpec(rate=1.0, popularity={"kind": "mystery"}).validate()


def test_network_spec_validation():
    with pytest.raises(ScenarioError, match="intra.*inter|'intra' or 'inter'"):
        NetworkSpec(kind="galactic").validate()
    with pytest.raises(ScenarioError):
        NetworkSpec(kind="intra", n_routers=1).validate()
    with pytest.raises(ScenarioError):
        Scenario(name="x", duration=-1.0).validate()
    with pytest.raises(ScenarioError):
        Scenario(name="x", sample_interval=0.0).validate()
