"""Route-decision explanation: segments, attribution, rendering."""

import pytest

from repro.intra.network import IntraDomainNetwork
from repro.obs import explain, trace
from repro.obs.trace import Tracer
from repro.topology.isp import synthetic_isp


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    trace.uninstall()


def _synthetic_span(tracer):
    span = tracer.span("intra.packet", start="r1", dest="ab", mode="data")
    span.event("cache.miss", router="r1")
    span.decision(router="r1", rule="successor", target="cd", distance=9)
    span.hop(frm="r1", to="r2")
    span.hop(frm="r2", to="r3")
    span.decision(router="r3", rule="cache", target="ab", distance=0)
    span.hop(frm="r3", to="r4")
    span.end(delivered=True, reason="delivered", router="r4")
    return span


class TestSyntheticSpans:
    def test_segments_group_hops_under_their_decision(self):
        tracer = Tracer()
        _synthetic_span(tracer)
        packet = explain.last_packet(tracer.sink.records())
        assert packet.delivered and packet.hops == 3
        assert [seg.rule for seg in packet.segments] == ["successor", "cache"]
        assert [seg.n_hops for seg in packet.segments] == [2, 1]
        assert [n.kind for n in packet.preamble] == ["cache.miss"]

    def test_attribution_sums_to_hops_over_optimal(self):
        tracer = Tracer()
        _synthetic_span(tracer)
        packet = explain.last_packet(tracer.sink.records())
        assert packet.attributions(2) == [1.0, 0.5]
        assert packet.total_stretch(2) == pytest.approx(1.5)
        # No baseline -> everything attributes to 0.0 (stretch contract).
        assert packet.total_stretch(0) == 0.0

    def test_render_mentions_every_rule_and_hop_walk(self):
        tracer = Tracer()
        _synthetic_span(tracer)
        text = explain.last_packet(tracer.sink.records()).render(2)
        assert "successor" in text and "cache" in text
        assert "r1 -> r2 -> r3" in text and "stretch 1.500" in text

    def test_span_grouping_separates_interleaved_packets(self):
        tracer = Tracer()
        a = tracer.span("intra.packet", start="r1")
        b = tracer.span("intra.packet", start="r9")
        a.decision(rule="successor")
        b.decision(rule="cache")
        a.end(delivered=True)
        b.end(delivered=False, reason="no routing state")
        packets = explain.explain_packets(tracer.sink.records())
        assert len(packets) == 2
        assert packets[0].delivered and not packets[1].delivered
        assert packets[1].reason == "no routing state"

    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            explain.explain_span([])

    def test_non_packet_spans_excluded(self):
        tracer = Tracer()
        tracer.span("sim.tick")
        assert explain.explain_packets(tracer.sink.records()) == []
        assert explain.last_packet(tracer.sink.records()) is None


class TestLiveTraces:
    """The acceptance criterion: a real routed packet explains end-to-end."""

    @pytest.fixture(scope="class")
    def net(self):
        net = IntraDomainNetwork(synthetic_isp(n_routers=24, seed=2), seed=2)
        net.join_random_hosts(50)
        return net

    def test_every_hop_carries_a_decision_tag(self, net):
        with trace.tracing() as tracer:
            a, b = net.random_host_pair()
            result = net.send(a, b)
        packet = explain.last_packet(tracer.sink.records())
        assert packet.delivered == result.delivered
        assert packet.hops == result.hops
        tagged = sum(seg.n_hops for seg in packet.segments)
        assert tagged == result.hops  # no orphan hops
        for seg in packet.segments:
            assert seg.rule in ("successor", "predecessor", "cache",
                                "ephemeral", "local-adopt")

    def test_attribution_equals_path_result_stretch(self, net):
        with trace.tracing() as tracer:
            for _ in range(10):
                a, b = net.random_host_pair()
                result = net.send(a, b)
                packet = explain.last_packet(tracer.sink.records())
                total = packet.total_stretch(result.optimal_hops)
                assert total == pytest.approx(result.stretch)
                tracer.sink.clear()

    def test_disabled_tracing_emits_nothing(self, net):
        tracer = Tracer()
        a, b = net.random_host_pair()
        net.send(a, b)  # no tracer installed
        assert len(tracer.sink) == 0
        assert trace.ENABLED is False
