"""Interdomain failure handling: stub AS failures (§6.3)."""

import random

import pytest

from repro.inter.network import InterDomainNetwork
from repro.topology.asgraph import synthetic_as_graph


@pytest.fixture()
def net():
    graph = synthetic_as_graph(n_ases=60, seed=30)
    net = InterDomainNetwork(graph, n_fingers=6, seed=30)
    net.join_random_hosts(150)
    return net


def populated_stub(net):
    return next(s for s in net.asg.stubs() if len(net.ases[s].hosted) > 0)


def test_rings_heal_after_stub_failure(net):
    stub = populated_stub(net)
    net.fail_as(stub)
    net.check_rings()


def test_dead_ids_removed_everywhere(net):
    stub = populated_stub(net)
    dead = {vn.id for vn in net.ases[stub].hosted.values()}
    net.fail_as(stub)
    for flat_id in dead:
        assert flat_id not in net.id_owner_index
        for ring in net.rings.values():
            assert flat_id not in ring
    for node in net.ases.values():
        for vn in node.hosted.values():
            for ptr in vn.candidate_pointers():
                assert ptr.dest_id not in dead
                assert stub not in ptr.as_route


def test_survivors_still_reachable(net):
    stub = populated_stub(net)
    net.fail_as(stub)
    for _ in range(50):
        a, b = net.random_host_pair()
        result = net.send(a, b)
        assert result.delivered
        assert stub not in result.path


def test_repair_cost_scales_with_resident_ids(net):
    """Paper: repair messages "roughly correspond to the number of
    identifiers hosted in the failed stub AS"."""
    stub = populated_stub(net)
    ids = len(net.ases[stub].hosted)
    messages = net.fail_as(stub)
    assert messages > 0
    assert messages <= 60 * ids  # per-ID repair is a handful of exchanges


def test_double_failure_is_idempotent(net):
    stub = populated_stub(net)
    net.fail_as(stub)
    assert net.fail_as(stub) == 0


def test_sequential_failures_keep_converging(net):
    rng = random.Random(0)
    stubs = [s for s in net.asg.stubs() if len(net.ases[s].hosted) > 0]
    rng.shuffle(stubs)
    for stub in stubs[:4]:
        net.fail_as(stub)
        net.check_rings()


def test_restore_allows_rejoining(net):
    stub = populated_stub(net)
    net.fail_as(stub)
    net.restore_as(stub)
    host = net.next_planned_host()
    while host.attach_at != stub:
        host = net.next_planned_host()
    receipt = net.join_host(host)
    assert receipt.home_as == stub
    net.check_rings()
    a = host.name
    b = next(n for n in net.hosts if n != a)
    assert net.send(b, a).delivered


def test_bgp_tables_invalidate_on_failure(net):
    stub = populated_stub(net)
    other = next(s for s in net.asg.ases() if s != stub)
    net.bgp.policy_distance(other, stub)
    net.fail_as(stub)
    assert not net.bgp._tables
