"""The control-plane message vocabulary (documentation-grade dataclasses)."""

import pytest

from repro.idspace.identifier import FlatId
from repro.sim.messages import (DataPacket, DeliveryReceipt, JoinRequest,
                                JoinResponse, LinkStateAd, PathSetup,
                                Teardown)


def test_join_request_accumulates_route_record():
    req = JoinRequest(src="r0", dst="r5", joining_id=FlatId(7),
                      route_record=("r0", "r2"))
    assert req.route_record == ("r0", "r2")
    assert req.joining_id == FlatId(7)


def test_join_response_carries_successor_group():
    resp = JoinResponse(src="r5", dst="r0", joining_id=FlatId(7),
                        predecessor=FlatId(3),
                        successors=(FlatId(9), FlatId(12)))
    assert resp.predecessor == FlatId(3)
    assert len(resp.successors) == 2


def test_path_setup_names_both_endpoints():
    setup = PathSetup(src="r0", dst="r9", from_id=FlatId(7), to_id=FlatId(9),
                      source_route=("r0", "r4", "r9"))
    assert setup.source_route[0] == "r0"
    assert setup.source_route[-1] == "r9"


def test_teardown_variants():
    by_id = Teardown(src="r0", dst="r9", failed_id=FlatId(7))
    by_router = Teardown(src="r0", dst="r9", failed_router="r7")
    assert by_id.failed_id is not None and by_id.failed_router is None
    assert by_router.failed_router == "r7"


def test_data_packet_as_path():
    pkt = DataPacket(src="r0", dst="r9", dest_id=FlatId(1),
                     as_path=("AS1", "AS2"))
    assert pkt.as_path == ("AS1", "AS2")


def test_lsa_piggybacks_zero_id():
    lsa = LinkStateAd(src="r0", dst="*", origin="r0", sequence=4,
                      neighbors=("r1", "r2"), zero_id=FlatId(0))
    assert lsa.zero_id == FlatId(0)
    assert lsa.sequence == 4


def test_messages_are_immutable():
    req = JoinRequest(src="a", dst="b", joining_id=FlatId(1))
    with pytest.raises(AttributeError):
        req.src = "c"


def test_delivery_receipt_defaults():
    receipt = DeliveryReceipt(completed_at=5.0, messages=3)
    assert receipt.path == []
