"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ROFL" in out and "SIGCOMM 2006" in out


def test_figures_single(capsys):
    assert main(["figures", "--only", "fig6b"]) == 0
    out = capsys.readouterr().out
    assert "Fig 6b" in out and "paper:" in out


def test_figures_unknown_prefix(capsys):
    assert main(["figures", "--only", "fig99"]) == 2
    assert "no figure matches" in capsys.readouterr().err


def test_quickstart(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "ring consistent" in out
    assert "reconverged" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_subcommand_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["frobnicate"])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    for command in ("figures", "workload", "quickstart", "info",
                    "serve", "snapshot", "compare-stretch", "report"):
        assert command in out


def test_compare_stretch_gate(tmp_path, capsys):
    out_path = tmp_path / "compare_stretch.json"
    assert main(["compare-stretch", "--hosts", "30", "--packets", "40",
                 "--ases", "20", "--inter-hosts", "30",
                 "--inter-packets", "30", "--all-pairs-hosts", "10",
                 "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "Head-to-head" in out and "disco all-pairs sweep" in out
    data = json.loads(out_path.read_text())
    assert data["intra"]["disco"]["bound_violations"] == 0
    assert data["disco_all_pairs"]["violations"] == []


def test_report_compare_section(tmp_path, capsys):
    compare_path = tmp_path / "cmp.json"
    compare_path.write_text(json.dumps({
        "profile": "T", "intra": {"disco": {
            "sent": 1, "delivered": 1, "mean": 1.0, "p99": 1.0,
            "worst": 1.0, "stretch_bound": 3.0, "bound_violations": 0,
            "probe_violations": [], "attribution_mismatches": 0,
            "tail_attribution": {}}},
        "disco_all_pairs": {"pairs": 2, "max_stretch": 1.0, "bound": 3.0,
                            "undelivered": 0, "violations": []}}))
    assert main(["report", "--compare", str(compare_path)]) == 0
    out = capsys.readouterr().out
    assert "Stretch head-to-head" in out
    assert "| disco | 1 | 1 |" in out
    assert "all-pairs sweep: 2 pairs" in out


def test_workload_list(capsys):
    assert main(["workload", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("steady-churn", "flash-crowd", "depeering"):
        assert name in out


def test_workload_requires_scenario(capsys):
    assert main(["workload"]) == 2
    assert "need a scenario" in capsys.readouterr().err


def test_workload_unknown_scenario(capsys):
    assert main(["workload", "no-such-thing"]) == 2
    err = capsys.readouterr().err
    assert "no such builtin or file" in err


def test_workload_malformed_scenario_json(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text("{this is not json")
    assert main(["workload", str(path)]) == 2
    assert "invalid scenario JSON" in capsys.readouterr().err


def test_workload_invalid_scenario_contents(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"name": "bad", "duration": 5.0,
                                "faults": [{"kind": "meteor", "at": 1.0}]}))
    assert main(["workload", str(path)]) == 2
    assert "unknown fault kind" in capsys.readouterr().err


def test_workload_builtin_runs_and_reports(capsys):
    assert main(["workload", "steady-churn"]) == 0
    out = capsys.readouterr().out
    assert "scenario 'steady-churn'" in out
    assert "delivery" in out
    assert "fault @" in out


def test_workload_json_output(tmp_path, capsys):
    scenario_path = tmp_path / "tiny.json"
    scenario_path.write_text(json.dumps({
        "name": "tiny", "duration": 10.0, "warmup_hosts": 20,
        "sample_interval": 5.0,
        "network": {"kind": "intra", "n_routers": 12},
        "phases": [{"name": "p", "start": 0.0, "end": 10.0,
                    "churn": {"arrival_rate": 1.0},
                    "traffic": {"rate": 3.0}}],
    }))
    out_path = tmp_path / "result.json"
    assert main(["workload", str(scenario_path),
                 "--json", str(out_path)]) == 0
    data = json.loads(out_path.read_text())
    assert set(data) == {"scenario", "samples", "summary", "totals",
                         "fault_log", "violations"}
    assert data["scenario"]["name"] == "tiny"
    assert data["totals"]["warmup_hosts"] == 20


def test_workload_seed_override_changes_result(tmp_path, capsys):
    args = ["workload", "steady-churn", "--json", "-"]
    assert main(args) == 0
    base = json.loads(capsys.readouterr().out)
    assert main(args + ["--seed", "9"]) == 0
    reseeded = json.loads(capsys.readouterr().out)
    assert base["scenario"]["seed"] == 0
    assert reseeded["scenario"]["seed"] == 9
    assert base["samples"] != reseeded["samples"]


def test_snapshot_save_info_verify_cycle(tmp_path, capsys):
    path = tmp_path / "net.snap"
    assert main(["snapshot", "save", str(path), "--hosts", "30",
                 "--routers", "16", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "state_hash=" in out and "30 hosts" in out

    assert main(["snapshot", "info", str(path)]) == 0
    out = capsys.readouterr().out
    assert "IntraDomainNetwork" in out
    assert "hosts        30" in out

    assert main(["snapshot", "verify", str(path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_snapshot_info_rejects_non_snapshot(tmp_path):
    from repro.snapshot import SnapshotError
    noise = tmp_path / "noise.bin"
    noise.write_bytes(b"\x00 not a snapshot")
    with pytest.raises(SnapshotError):
        main(["snapshot", "info", str(noise)])


def test_serve_requests_file_session(tmp_path, capsys):
    requests = tmp_path / "requests.jsonl"
    requests.write_text("\n".join(json.dumps(r) for r in (
        {"op": "ping", "id": 0},
        {"op": "info", "id": 1},
        {"op": "send", "n": 5, "id": 2},
        {"op": "shutdown", "id": 3},
    )) + "\n")
    assert main(["serve", "--hosts", "25", "--routers", "16",
                 "--requests", str(requests)]) == 0
    captured = capsys.readouterr()
    lines = [json.loads(line) for line in captured.out.splitlines()]
    assert [r["ok"] for r in lines] == [True] * 4
    assert lines[1]["hosts"] == 25
    assert lines[2]["delivered"] == 5
    assert "answered 4 scripted request(s)" in captured.err


def test_serve_warm_loads_snapshot(tmp_path, capsys):
    path = tmp_path / "warm.snap"
    assert main(["snapshot", "save", str(path), "--hosts", "20",
                 "--routers", "16"]) == 0
    capsys.readouterr()
    requests = tmp_path / "requests.jsonl"
    requests.write_text('{"op": "info"}\n{"op": "shutdown"}\n')
    assert main(["serve", "--snapshot", str(path), "--verify",
                 "--requests", str(requests)]) == 0
    captured = capsys.readouterr()
    info = json.loads(captured.out.splitlines()[0])
    assert info["hosts"] == 20
    assert "loaded" in captured.err


def test_workload_metrics_out_streams_windows(tmp_path, capsys):
    path = tmp_path / "metrics.jsonl"
    assert main(["workload", "steady-churn", "--metrics-out", str(path),
                 "--metrics-window", "20"]) == 0
    captured = capsys.readouterr()
    assert "metrics:" in captured.err and "window(s)" in captured.err
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert rows
    assert all(row["source"] == "steady-churn" for row in rows)
    # Deterministic stream: re-running the same seed reproduces it.
    again = tmp_path / "metrics-again.jsonl"
    assert main(["workload", "steady-churn", "--metrics-out", str(again),
                 "--metrics-window", "20"]) == 0
    assert again.read_bytes() == path.read_bytes()


def test_serve_telemetry_flags_require_shards(capsys):
    assert main(["serve", "--trace-out", "t.jsonl",
                 "--requests", "/dev/null"]) == 2
    assert "--shards" in capsys.readouterr().err
    assert main(["serve", "--metrics-out", "m.jsonl",
                 "--requests", "/dev/null"]) == 2
    assert "repro workload" in capsys.readouterr().err


def test_report_requires_an_input(capsys):
    assert main(["report"]) == 2
    assert "nothing to render" in capsys.readouterr().err


def test_report_rejects_unreadable_input(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["report", "--perf", str(bad)]) == 2
    assert "report:" in capsys.readouterr().err


def test_report_markdown_to_stdout(tmp_path, capsys):
    metrics = tmp_path / "m.jsonl"
    result = tmp_path / "r.json"
    assert main(["workload", "steady-churn", "--metrics-out", str(metrics),
                 "--json", str(result)]) == 0
    capsys.readouterr()
    assert main(["report", "--metrics", str(metrics),
                 "--perf", str(result), "--title", "Smoke"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# Smoke")
    assert "## Metrics stream" in out


def test_report_writes_html_file(tmp_path, capsys):
    metrics = tmp_path / "m.jsonl"
    assert main(["workload", "steady-churn",
                 "--metrics-out", str(metrics)]) == 0
    capsys.readouterr()
    out_path = tmp_path / "report.html"
    assert main(["report", "--metrics", str(metrics),
                 "--out", str(out_path)]) == 0
    assert "wrote" in capsys.readouterr().out
    html = out_path.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html
