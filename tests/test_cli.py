"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ROFL" in out and "SIGCOMM 2006" in out


def test_figures_single(capsys):
    assert main(["figures", "--only", "fig6b"]) == 0
    out = capsys.readouterr().out
    assert "Fig 6b" in out and "paper:" in out


def test_figures_unknown_prefix(capsys):
    assert main(["figures", "--only", "fig99"]) == 2
    assert "no figure matches" in capsys.readouterr().err


def test_quickstart(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "ring consistent" in out
    assert "reconverged" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
